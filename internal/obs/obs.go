// Package obs is the observability subsystem: structured trace events
// and cheap metrics explaining *why* a schedule came out the way it did.
//
// The paper's argument is all about visibility into contention — WTPG
// critical paths estimate schedule completion, E(q) estimates local
// contention — but aggregate results (mean response time, throughput)
// cannot show which decisions produced them. This package defines typed
// trace events covering the whole life of a transaction, from admission
// through lock decisions to commit, plus the control-plane internals
// (edge resolutions, critical-path changes), and pluggable sinks that
// consume them:
//
//   - Ring: a fixed-capacity in-memory buffer (flight recorder),
//   - JSONL: one JSON object per line on any io.Writer,
//   - Metrics: counters and bucketed histograms with a human-readable
//     summary table,
//   - Multi: a fan-out combinator,
//   - Nop: the explicit no-op.
//
// Emission sites (package sim, live, and the sched.Observed wrapper)
// check their observer for nil before building an event, so the default
// — no observer — costs nothing.
//
// All sinks in this package are safe for concurrent use; the live
// controller and the experiment harness emit from many goroutines.
//
// The experiment harness additionally follows a per-run ownership rule
// for deterministic output: each parallel run emits into private sinks
// (a Metrics of its own, a trace buffer), which the harness merges into
// the caller's shared sinks in grid order after the run completes — see
// Metrics.Merge and package experiments.
package obs

import (
	"encoding/json"
	"fmt"

	"batsched/internal/event"
	"batsched/internal/txn"
)

// Kind classifies a trace event.
type Kind uint8

const (
	// KindAdmit: a transaction was submitted for admission (its arrival
	// at the control node). The admission *outcome* is a Decision event.
	KindAdmit Kind = iota
	// KindRequest: a lock request for one step was submitted.
	KindRequest
	// KindDecision: the scheduler decided an admit or lock request
	// (Op says which); carries the decision, its control-CPU cost, and
	// the WTPG size at decision time.
	KindDecision
	// KindObjectDone: bulk processing progressed by Objects objects
	// (the §3.1 weight-adjustment message).
	KindObjectDone
	// KindCommit: a transaction committed (RT is its response time) or,
	// when Decision is "aborted", released its locks without committing.
	KindCommit
	// KindResolve: a WTPG conflicting-edge was resolved From→To (a
	// precedence was fixed forever).
	KindResolve
	// KindCriticalPathChange: the length of the WTPG critical path
	// T0→…→Tf changed; CritPath is the new length in objects.
	KindCriticalPathChange
	// KindAbort: an admitted transaction was externally aborted (caller
	// abandonment, injected fault, or the live controller's watchdog)
	// and the scheduler ran its recovery path — locks released,
	// precedence spliced. The splice's own resolutions arrive as
	// Resolve events.
	KindAbort
	// KindStall: the live controller's no-progress watchdog fired; Op
	// carries the action taken ("kick" for a broadcast retry, "abort"
	// when a blocked transaction was force-aborted, with Txn naming it).
	KindStall
	// KindDegrade: a scheduler fell back to its degraded-but-safe mode
	// (CHAIN → ASL-style admission with cautious grants).
	KindDegrade
	// KindRestore: a degraded scheduler returned to full operation.
	KindRestore
	// KindFault: an injected fault fired; Op names the fault
	// ("abort", "refuse-admit", "slow-io", "crash", "node-crash").
	KindFault
	// KindNodeDown: data node Node crashed; its resident jobs are
	// requeued or their transactions aborted, and its partitions
	// re-home (the Rehome events that follow).
	KindNodeDown
	// KindRehome: partition Part moved homes after a node crash, from
	// node FromNode to node Node.
	KindRehome
	// KindRequeue: a recoverable transaction's resident job survived a
	// node crash and was requeued — Txn/Step/Part locate it, FromNode is
	// the dead node, Node the new one.
	KindRequeue
	// KindEpochFlush: an epoch-batch admission window closed and its
	// collected arrivals were admitted as one batch. Batch is the batch
	// size, Objects the admitted count, Clusters the number of
	// conflict-free clusters among the admitted members, CPU the
	// batch-level control cost (the single W recomputation).
	KindEpochFlush
	// KindWALAppend: a dependency-log record was appended (not yet
	// durable). Op is the record kind ("begin", "commit", "abort"),
	// Node the per-node log it was routed to.
	KindWALAppend
	// KindWALSync: a WAL group-commit fsync pass completed; Batch is
	// the number of records the pass made durable (piggybacked callers
	// emit nothing), DurNS its wall duration.
	KindWALSync
	// KindRecover: a WAL replay rebuilt controller state. Batch is the
	// number of committed transactions replayed, Clusters the widest
	// replay wave (the parallelism the dependency log permitted),
	// Objects the re-aborted incomplete count, DurNS the replay wall
	// duration.
	KindRecover
	// KindPageRead: the storage engine fetched one page through a buffer
	// pool. Op is "hit" or "miss", Part the partition heap file, Node
	// the pool's node, Batch the bytes read from disk (0 on a hit).
	KindPageRead
	// KindPageWrite: a dirty page was written back to its heap file
	// (commit flush or dirty-victim eviction); Batch is the page bytes.
	KindPageWrite
	// KindPageEvict: the clock hand evicted a frame; Op is "clean" or
	// "dirty" (a dirty eviction is preceded by its PageWrite).
	KindPageEvict
)

var kindNames = [...]string{
	KindAdmit:              "admit",
	KindRequest:            "request",
	KindDecision:           "decision",
	KindObjectDone:         "object-done",
	KindCommit:             "commit",
	KindResolve:            "resolve",
	KindCriticalPathChange: "critical-path",
	KindAbort:              "abort",
	KindStall:              "stall",
	KindDegrade:            "degrade",
	KindRestore:            "restore",
	KindFault:              "fault",
	KindNodeDown:           "node-down",
	KindRehome:             "rehome",
	KindRequeue:            "requeue",
	KindEpochFlush:         "epoch-flush",
	KindWALAppend:          "wal-append",
	KindWALSync:            "wal-sync",
	KindRecover:            "recover",
	KindPageRead:           "page-read",
	KindPageWrite:          "page-write",
	KindPageEvict:          "page-evict",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// MarshalJSON encodes the kind as its string name.
func (k Kind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON decodes a kind from its string name.
func (k *Kind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	for i, name := range kindNames {
		if name == s {
			*k = Kind(i)
			return nil
		}
	}
	return fmt.Errorf("obs: unknown event kind %q", s)
}

// Event is one structured trace event. Fields beyond Kind, At and Txn
// are populated per kind (see the Kind constants); zero values mean
// "not applicable".
type Event struct {
	Kind Kind `json:"kind"`
	// At is the scheduler clock: simulation time in package sim,
	// wall milliseconds since controller start in package live.
	At event.Time `json:"at"`
	// WallNS is the wall-clock emission time (ns since the Unix epoch);
	// zero in deterministic simulation traces.
	WallNS int64 `json:"wall_ns,omitempty"`
	// Sched is the scheduler label ("CHAIN", "K2", …).
	Sched string `json:"sched,omitempty"`
	// Txn is the transaction the event concerns (0 for graph-level
	// events such as critical-path changes).
	Txn txn.ID `json:"txn,omitempty"`
	// Step and Part locate a lock request (Request / Decision-request).
	Step int             `json:"step"`
	Part txn.PartitionID `json:"part"`
	// Op distinguishes Decision events: "admit" or "request".
	Op string `json:"op,omitempty"`
	// Decision is the outcome ("granted", "blocked", "delayed",
	// "aborted") of a Decision event, or "aborted" on a Commit event
	// that released locks without committing.
	Decision string `json:"decision,omitempty"`
	// CPU is the control-node CPU cost of a decision, in clocks
	// (simulation only; live decisions report DurNS instead).
	CPU event.Time `json:"cpu,omitempty"`
	// DurNS is the wall-clock duration of the scheduler call in
	// nanoseconds (populated by the sched.Observed wrapper).
	DurNS int64 `json:"dur_ns,omitempty"`
	// Objects is the processed-object count of an ObjectDone event.
	Objects float64 `json:"objects,omitempty"`
	// RT is the response time carried by a Commit event.
	RT event.Time `json:"rt,omitempty"`
	// From and To name the resolved precedence of a Resolve event.
	From txn.ID `json:"from,omitempty"`
	To   txn.ID `json:"to,omitempty"`
	// CritPath is the critical-path length (objects) after the change.
	CritPath float64 `json:"crit_path,omitempty"`
	// Graph is the WTPG size (live transactions) at decision time.
	Graph int `json:"graph,omitempty"`
	// Queue is the number of requests already waiting on Part when a
	// Request event was emitted (lock-queue depth).
	Queue int `json:"queue,omitempty"`
	// Node is the data node a node-down / re-home / requeue event
	// concerns (the dead node for node-down, the new home otherwise);
	// FromNode is the previous home of a re-homed partition or requeued
	// job. Both are meaningless for other kinds.
	Node     int `json:"node,omitempty"`
	FromNode int `json:"from_node,omitempty"`
	// Batch is the batch size of an EpochFlush event; Clusters is its
	// number of conflict-free clusters among admitted members.
	Batch    int `json:"batch,omitempty"`
	Clusters int `json:"clusters,omitempty"`
	// Shard is the live controller's lock-table shard the event was
	// emitted from (WithShards). Zero both for shard 0 and for unsharded
	// emitters (the simulator, controller-level events), so a nonzero
	// value always names a real non-default shard.
	Shard int `json:"shard,omitempty"`
}

// String renders the event in the grep-friendly one-line style of the
// legacy text tracer.
func (e Event) String() string {
	s := fmt.Sprintf("%9d %v %s", int64(e.At), e.Txn, e.Kind)
	switch e.Kind {
	case KindRequest:
		s += fmt.Sprintf(" step=%d part=P%d queue=%d", e.Step, e.Part, e.Queue)
	case KindDecision:
		s += fmt.Sprintf(" op=%s decision=%s cpu=%d graph=%d", e.Op, e.Decision, int64(e.CPU), e.Graph)
	case KindObjectDone:
		s += fmt.Sprintf(" n=%g", e.Objects)
	case KindCommit:
		if e.Decision != "" {
			s += " decision=" + e.Decision
		}
		s += fmt.Sprintf(" rt=%v", e.RT)
	case KindResolve:
		s += fmt.Sprintf(" %v->%v", e.From, e.To)
	case KindCriticalPathChange:
		s += fmt.Sprintf(" len=%.3g graph=%d", e.CritPath, e.Graph)
	case KindAbort:
		s += fmt.Sprintf(" graph=%d", e.Graph)
	case KindStall, KindFault:
		if e.Op != "" {
			s += " op=" + e.Op
		}
	case KindNodeDown:
		s += fmt.Sprintf(" node=%d", e.Node)
	case KindRehome:
		s += fmt.Sprintf(" part=P%d %d->%d", e.Part, e.FromNode, e.Node)
	case KindRequeue:
		s += fmt.Sprintf(" step=%d part=P%d %d->%d", e.Step, e.Part, e.FromNode, e.Node)
	case KindEpochFlush:
		s += fmt.Sprintf(" batch=%d admitted=%g clusters=%d cpu=%d", e.Batch, e.Objects, e.Clusters, int64(e.CPU))
	case KindWALAppend:
		s += fmt.Sprintf(" op=%s node=%d", e.Op, e.Node)
	case KindWALSync:
		s += fmt.Sprintf(" batch=%d", e.Batch)
	case KindRecover:
		s += fmt.Sprintf(" replayed=%d maxpar=%d reaborted=%g dur_ns=%d", e.Batch, e.Clusters, e.Objects, e.DurNS)
	case KindPageRead:
		s += fmt.Sprintf(" part=P%d op=%s bytes=%d", e.Part, e.Op, e.Batch)
	case KindPageWrite:
		s += fmt.Sprintf(" part=P%d bytes=%d", e.Part, e.Batch)
	case KindPageEvict:
		s += fmt.Sprintf(" part=P%d op=%s", e.Part, e.Op)
	}
	if e.Shard > 0 {
		s += fmt.Sprintf(" shard=%d", e.Shard)
	}
	return s
}

// Observer receives trace events. Implementations must be safe for
// concurrent use when attached to the live controller or the experiment
// harness; a nil Observer at an emission site means "don't observe" and
// costs only the nil check.
type Observer interface {
	Observe(Event)
}

// Sink is an Observer with a lifecycle: Close flushes and releases any
// underlying resources. Every sink in this package implements it.
type Sink interface {
	Observer
	Close() error
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Event)

// Observe calls f(e).
func (f ObserverFunc) Observe(e Event) { f(e) }

// Nop is the explicit no-op sink: every event is discarded.
type Nop struct{}

// Observe discards the event.
func (Nop) Observe(Event) {}

// Close does nothing.
func (Nop) Close() error { return nil }

// multi fans events out to several observers in order.
type multi struct {
	obs []Observer
}

// Multi returns an observer that forwards every event to each of the
// given observers in order. Nil entries are skipped; with zero or one
// usable observers the combinator collapses to Nop or the observer
// itself.
func Multi(observers ...Observer) Observer {
	kept := make([]Observer, 0, len(observers))
	for _, o := range observers {
		if o != nil {
			kept = append(kept, o)
		}
	}
	switch len(kept) {
	case 0:
		return Nop{}
	case 1:
		return kept[0]
	}
	return &multi{obs: kept}
}

func (m *multi) Observe(e Event) {
	for _, o := range m.obs {
		o.Observe(e)
	}
}

// Close closes every wrapped observer that is a Sink, returning the
// first error.
func (m *multi) Close() error {
	var first error
	for _, o := range m.obs {
		if s, ok := o.(Sink); ok {
			if err := s.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}
