// The parallel experiment harness is the heaviest concurrent producer
// of obs events: many simulations emit at once into per-run sinks that
// are merged into shared ones. This test lives with package obs (as an
// external test, to avoid an import cycle) because it enforces the
// per-run sink ownership rule end to end, and `make verify` runs this
// package under -race.
package obs_test

import (
	"bytes"
	"strings"
	"testing"

	"batsched/internal/experiments"
	"batsched/internal/machine"
	"batsched/internal/obs"
)

// TestParallelHarnessRace fans a small grid across 8 workers with both
// a shared JSONL sink and shared metrics attached. Under -race this
// proves the harness never lets two runs touch a shared sink
// concurrently; the assertions prove the merged output is complete.
func TestParallelHarnessRace(t *testing.T) {
	var buf bytes.Buffer
	sink := obs.NewJSONL(&buf)
	o := experiments.Options{
		Machine:      machine.DefaultConfig(),
		Horizon:      60_000,
		Seed:         7,
		Lambdas:      []float64{0.3, 0.6},
		Replications: 2,
	}
	r, err := experiments.RunExperiment1(o,
		experiments.WithParallelism(8),
		experiments.WithTrace(sink),
		experiments.WithMetrics())
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("shared JSONL sink saw no events")
	}
	// Every grid cell carries its own merged per-run metrics.
	for _, sw := range r.Sweeps {
		for _, p := range sw.Points {
			if p.Metrics == nil {
				t.Fatalf("%s λ=%g: no metrics", sw.Label, p.Lambda)
			}
			sm := p.Metrics.Sched(sw.Label)
			if sm == nil || sm.Commits == 0 {
				t.Errorf("%s λ=%g: empty per-cell metrics", sw.Label, p.Lambda)
			}
		}
	}
	// The trace contains events from every scheduler of the grid.
	for _, sw := range r.Sweeps {
		if !strings.Contains(buf.String(), `"sched":"`+sw.Label+`"`) {
			t.Errorf("trace has no events from %s", sw.Label)
		}
	}
}
