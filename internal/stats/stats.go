// Package stats provides the statistics used by the simulation and the
// experiment harness: streaming mean/variance accumulators, percentiles,
// and the "throughput at mean response time = X" interpolation the paper
// uses to compare schedulers (Figures 6, 8 and 10).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Welford is a streaming mean/variance accumulator (Welford's method).
// The zero value is ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add observes one value.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Count returns the number of observations.
func (w *Welford) Count() int64 { return w.n }

// Mean returns the sample mean (0 with no observations).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Variance()) }

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of data using
// linear interpolation between closest ranks. It does not modify data.
func Percentile(data []float64, p float64) (float64, error) {
	if len(data) == 0 {
		return 0, fmt.Errorf("stats: percentile of empty data")
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %g out of range", p)
	}
	s := append([]float64(nil), data...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0], nil
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo], nil
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac, nil
}

// SweepPoint is one measured point of an arrival-rate sweep.
type SweepPoint struct {
	// Lambda is the arrival rate (transactions per second).
	Lambda float64
	// RT is the mean response time in seconds.
	RT float64
	// TPS is the measured throughput in transactions per second.
	TPS float64
}

// ThroughputAtRT interpolates the throughput at the arrival rate where
// the mean response time first crosses rtTarget seconds — the comparison
// metric of Figures 6, 8 and 10 ("throughput at RT = 70 sec").
//
// Points must be ordered by increasing Lambda. The boolean result is true
// when a genuine crossing was found; if the response time never reaches
// the target the throughput of the last point is returned with false
// (the scheduler is still stable at the highest tested rate), and if even
// the first point exceeds the target the first throughput is returned
// with false.
func ThroughputAtRT(points []SweepPoint, rtTarget float64) (float64, bool) {
	if len(points) == 0 {
		return 0, false
	}
	if points[0].RT >= rtTarget {
		return points[0].TPS, false
	}
	for i := 1; i < len(points); i++ {
		lo, hi := points[i-1], points[i]
		if hi.RT < rtTarget {
			continue
		}
		if hi.RT == lo.RT {
			return hi.TPS, true
		}
		frac := (rtTarget - lo.RT) / (hi.RT - lo.RT)
		return lo.TPS + frac*(hi.TPS-lo.TPS), true
	}
	return points[len(points)-1].TPS, false
}
