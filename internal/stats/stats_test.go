package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWelford(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.Count() != 8 {
		t.Errorf("Count = %d", w.Count())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %g, want 5", w.Mean())
	}
	// Sample variance of this classic dataset is 32/7.
	if math.Abs(w.Variance()-32.0/7.0) > 1e-12 {
		t.Errorf("Variance = %g, want %g", w.Variance(), 32.0/7.0)
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Std() != 0 {
		t.Error("empty accumulator not zero")
	}
	w.Add(3)
	if w.Mean() != 3 || w.Variance() != 0 {
		t.Errorf("single observation: mean %g var %g", w.Mean(), w.Variance())
	}
}

// Property: Welford agrees with the naive two-pass computation.
func TestQuickWelfordMatchesNaive(t *testing.T) {
	f := func(raw []float64) bool {
		var data []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				data = append(data, x)
			}
		}
		if len(data) < 2 {
			return true
		}
		var w Welford
		sum := 0.0
		for _, x := range data {
			w.Add(x)
			sum += x
		}
		mean := sum / float64(len(data))
		var m2 float64
		for _, x := range data {
			m2 += (x - mean) * (x - mean)
		}
		variance := m2 / float64(len(data)-1)
		scale := 1 + math.Abs(variance)
		return math.Abs(w.Mean()-mean) < 1e-6*(1+math.Abs(mean)) &&
			math.Abs(w.Variance()-variance) < 1e-6*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentile(t *testing.T) {
	data := []float64{15, 20, 35, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 15}, {100, 50}, {50, 35}, {25, 20}, {75, 40},
	}
	for _, c := range cases {
		got, err := Percentile(data, c.p)
		if err != nil || got != c.want {
			t.Errorf("Percentile(%g) = %g,%v; want %g", c.p, got, err, c.want)
		}
	}
	if _, err := Percentile(nil, 50); err == nil {
		t.Error("empty data accepted")
	}
	if _, err := Percentile(data, 101); err == nil {
		t.Error("out-of-range percentile accepted")
	}
	// Does not mutate input.
	shuffled := []float64{3, 1, 2}
	if _, err := Percentile(shuffled, 50); err != nil {
		t.Fatal(err)
	}
	if shuffled[0] != 3 || shuffled[1] != 1 || shuffled[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestThroughputAtRT(t *testing.T) {
	pts := []SweepPoint{
		{Lambda: 0.2, RT: 10, TPS: 0.2},
		{Lambda: 0.4, RT: 30, TPS: 0.4},
		{Lambda: 0.6, RT: 90, TPS: 0.5},
		{Lambda: 0.8, RT: 300, TPS: 0.45},
	}
	got, exact := ThroughputAtRT(pts, 70)
	if !exact {
		t.Fatal("crossing not found")
	}
	// Crossing between RT=30 (tps .4) and RT=90 (tps .5): frac = 40/60.
	want := 0.4 + (40.0/60.0)*0.1
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("TPS@70 = %g, want %g", got, want)
	}
}

func TestThroughputAtRTEdges(t *testing.T) {
	if _, ok := ThroughputAtRT(nil, 70); ok {
		t.Error("empty sweep reported a crossing")
	}
	// Never reaches target: last TPS, not exact.
	pts := []SweepPoint{{0.2, 10, 0.2}, {0.4, 20, 0.4}}
	got, ok := ThroughputAtRT(pts, 70)
	if ok || got != 0.4 {
		t.Errorf("stable sweep = %g,%v; want 0.4,false", got, ok)
	}
	// Already above target at the first point.
	pts = []SweepPoint{{0.2, 100, 0.2}, {0.4, 200, 0.25}}
	got, ok = ThroughputAtRT(pts, 70)
	if ok || got != 0.2 {
		t.Errorf("overloaded sweep = %g,%v; want 0.2,false", got, ok)
	}
}

// Property: the interpolated throughput lies between the bracketing
// points' throughputs.
func TestQuickThroughputBracket(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(8)
		pts := make([]SweepPoint, n)
		rt := 0.0
		for i := range pts {
			rt += rng.Float64() * 50
			pts[i] = SweepPoint{
				Lambda: float64(i+1) * 0.1,
				RT:     rt,
				TPS:    rng.Float64(),
			}
		}
		target := rng.Float64() * 200
		got, exact := ThroughputAtRT(pts, target)
		if !exact {
			continue
		}
		for i := 1; i < n; i++ {
			if pts[i].RT >= target && pts[i-1].RT < target {
				lo, hi := pts[i-1].TPS, pts[i].TPS
				if lo > hi {
					lo, hi = hi, lo
				}
				if got < lo-1e-9 || got > hi+1e-9 {
					t.Fatalf("interpolated %g outside [%g,%g]", got, lo, hi)
				}
				break
			}
		}
	}
}
