package modelcheck

import (
	"testing"

	"batsched/internal/core/sched"
	"batsched/internal/event"
	"batsched/internal/txn"
)

// TestCrashAnywhereIsRecoverable: across every scheduler and scenario,
// crash every admitted-uncommitted transaction at every reachable
// prefix. The recovery path must always leave an acyclic WTPG with the
// dead transaction spliced out, no granted lock owned by the dead
// transaction, a consistent lock table, and survivors that can all run
// to commitment.
func TestCrashAnywhereIsRecoverable(t *testing.T) {
	for name, txns := range scenarios() {
		for _, f := range allSchedulers() {
			name, txns, f := name, txns, f
			t.Run(name+"/"+f.Label, func(t *testing.T) {
				t.Parallel()
				rep, err := ExploreCrashes(f, txns, 200_000)
				if err != nil {
					t.Fatal(err)
				}
				if rep.Truncated {
					t.Fatalf("state space truncated at %d prefixes", rep.Prefixes)
				}
				if rep.CrashPoints == 0 {
					t.Fatal("no crash point exercised")
				}
				if len(rep.Problems) > 0 {
					t.Fatalf("%d recovery violations, first: %s", len(rep.Problems), rep.Problems[0])
				}
				t.Logf("%d prefixes, %d crash points, all recoverable", rep.Prefixes, rep.CrashPoints)
			})
		}
	}
}

// TestCrashCheckerCatchesBadRecovery: a scheduler whose abort leaks the
// victim's locks must be flagged — a sanity check that the crash
// checker can actually find violations.
func TestCrashCheckerCatchesBadRecovery(t *testing.T) {
	leaky := sched.Factory{
		Label: "LEAKY",
		New: func(c sched.Costs) sched.Scheduler {
			return &leakyAbort{Scheduler: sched.NewC2PL(c)}
		},
	}
	txns := []*txn.T{
		txn.New(1, []txn.Step{w(0, 1), w(1, 1)}),
		txn.New(2, []txn.Step{w(0, 1), w(1, 1)}),
	}
	rep, err := ExploreCrashes(leaky, txns, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Problems) == 0 {
		t.Fatal("checker failed to catch the leaked locks")
	}
	t.Logf("caught: %s", rep.Problems[0])
}

// leakyAbort swallows Abort entirely, leaving the victim's locks held —
// the bug the crash checker exists to catch (the survivors wedge on
// the dead transaction's locks).
type leakyAbort struct {
	sched.Scheduler
}

func (l *leakyAbort) Abort(t *txn.T, now event.Time) ([]txn.PartitionID, event.Time) {
	return nil, 0
}

func TestExploreCrashesValidation(t *testing.T) {
	if _, err := ExploreCrashes(sched.C2PLFactory(), nil, 0); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := ExploreCrashes(sched.C2PLFactory(), []*txn.T{nil}, 0); err == nil {
		t.Error("nil transaction accepted")
	}
}

// TestExploreCrashesTruncation: a tiny prefix bound stops early.
func TestExploreCrashesTruncation(t *testing.T) {
	rep, err := ExploreCrashes(sched.C2PLFactory(), scenarios()["figure1"], 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Truncated {
		t.Errorf("report: %+v", rep)
	}
}
