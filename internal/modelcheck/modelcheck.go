// Package modelcheck exhaustively explores every schedule a scheduler
// can produce for a small set of transactions, checking the properties
// the paper claims for all of them:
//
//   - no wedge: whenever work remains, some pending request is grantable
//     (the cautious schedulers are deadlock-free without aborting);
//   - conflict serializability of every complete schedule;
//   - termination: every exploration path commits every transaction.
//
// The exploration model matches the simulator's essentials while
// abstracting time away: transactions are actors; at each state the
// checker branches over every actor whose next action can make progress
// (admission or a lock grant). A refused action (blocked/delayed/
// admission-rejected) is not a branch — re-submitting it in the same
// state is a no-op, so it becomes grantable only after some other actor
// progresses, exactly like the simulator's wake/retry loop. Scheduler
// state is reconstructed per path by replaying the action prefix, which
// keeps the checker independent of scheduler internals.
package modelcheck

import (
	"fmt"

	"batsched/internal/core/sched"
	"batsched/internal/event"
	"batsched/internal/txn"
)

// Report summarizes one exploration.
type Report struct {
	// Paths is the number of complete schedules explored.
	Paths int
	// States is the number of action evaluations performed.
	States int
	// Wedges lists action prefixes from which no actor could progress
	// (empty for a correct scheduler).
	Wedges [][]Action
	// NonSerializable lists complete schedules whose conflict graph has
	// a cycle (empty for a correct scheduler).
	NonSerializable [][]Action
	// Truncated reports that MaxPaths stopped the exploration early.
	Truncated bool
}

// Action is one progress event of a schedule prefix.
type Action struct {
	Txn txn.ID
	// Step is -1 for the admission action, otherwise the step granted.
	Step int
}

// String renders "T1:admit" or "T1:s0".
func (a Action) String() string {
	if a.Step < 0 {
		return fmt.Sprintf("%v:admit", a.Txn)
	}
	return fmt.Sprintf("%v:s%d", a.Txn, a.Step)
}

// Explore runs the exhaustive exploration. MaxPaths bounds the number of
// complete schedules (0 means 100000). The factory is invoked once per
// replay, so the scheduler must be deterministic — all of this
// repository's schedulers are.
func Explore(factory sched.Factory, txns []*txn.T, maxPaths int) (*Report, error) {
	if len(txns) == 0 {
		return nil, fmt.Errorf("modelcheck: no transactions")
	}
	for _, t := range txns {
		if t == nil {
			return nil, fmt.Errorf("modelcheck: nil transaction")
		}
	}
	if maxPaths <= 0 {
		maxPaths = 100_000
	}
	r := &Report{}
	e := &explorer{factory: factory, txns: txns, maxPaths: maxPaths, report: r}
	e.dfs(nil)
	return r, nil
}

type explorer struct {
	factory  sched.Factory
	txns     []*txn.T
	maxPaths int
	report   *Report
}

// replay rebuilds scheduler state for a prefix and returns it along with
// each transaction's progress: -1 = not admitted, otherwise next step
// index (len(steps) = fully granted, committed on reaching it).
func (e *explorer) replay(prefix []Action) (sched.Scheduler, map[txn.ID]int) {
	// Time is irrelevant to correctness; advance a fake clock so KeepTime
	// caching exercises both fresh and cached paths.
	s := e.factory.New(sched.Costs{KeepTime: 2})
	pos := make(map[txn.ID]int, len(e.txns))
	byID := make(map[txn.ID]*txn.T, len(e.txns))
	for _, t := range e.txns {
		pos[t.ID] = -1
		byID[t.ID] = t
	}
	now := event.Time(0)
	for _, a := range prefix {
		now++
		t := byID[a.Txn]
		if a.Step < 0 {
			out := s.Admit(t, now)
			if out.Decision != sched.Granted {
				panic(fmt.Sprintf("modelcheck: replay diverged: admit %v = %v", a.Txn, out.Decision))
			}
			pos[t.ID] = 0
			continue
		}
		out := s.Request(t, a.Step, now)
		if out.Decision != sched.Granted {
			panic(fmt.Sprintf("modelcheck: replay diverged: %v step %d = %v", a.Txn, a.Step, out.Decision))
		}
		// Bulk processing completes; weights drain to due(next steps).
		s.ObjectDone(t, t.Steps[a.Step].Cost, now)
		pos[t.ID] = a.Step + 1
		if pos[t.ID] == len(t.Steps) {
			s.Commit(t, now)
		}
	}
	return s, pos
}

// dfs explores all continuations of a prefix.
func (e *explorer) dfs(prefix []Action) {
	if e.report.Truncated {
		return
	}
	_, pos := e.replay(prefix)
	now := event.Time(len(prefix) + 1)
	var enabled []Action
	allDone := true
	for _, t := range e.txns {
		p := pos[t.ID]
		if p == len(t.Steps) {
			continue
		}
		allDone = false
		e.report.States++
		// Probe on a fresh replay each time: even a refused request may
		// mutate scheduler caches (§3.4), and a tentative grant certainly
		// mutates lock/graph state.
		s, _ := e.replay(prefix)
		if p < 0 {
			if out := s.Admit(t, now); out.Decision == sched.Granted {
				enabled = append(enabled, Action{Txn: t.ID, Step: -1})
			}
			continue
		}
		if out := s.Request(t, p, now); out.Decision == sched.Granted {
			enabled = append(enabled, Action{Txn: t.ID, Step: p})
		}
	}
	if allDone {
		e.report.Paths++
		if e.report.Paths >= e.maxPaths {
			e.report.Truncated = true
		}
		if !e.serializable(prefix) {
			e.report.NonSerializable = append(e.report.NonSerializable, append([]Action(nil), prefix...))
		}
		return
	}
	if len(enabled) == 0 {
		e.report.Wedges = append(e.report.Wedges, append([]Action(nil), prefix...))
		return
	}
	for _, a := range enabled {
		e.dfs(append(prefix, a))
		if e.report.Truncated {
			return
		}
	}
}

// serializable checks the conflict graph induced by the grant order.
func (e *explorer) serializable(schedule []Action) bool {
	byID := make(map[txn.ID]*txn.T, len(e.txns))
	for _, t := range e.txns {
		byID[t.ID] = t
	}
	type grant struct {
		id   txn.ID
		step txn.Step
	}
	var grants []grant
	for _, a := range schedule {
		if a.Step >= 0 {
			grants = append(grants, grant{a.Txn, byID[a.Txn].Steps[a.Step]})
		}
	}
	succ := make(map[txn.ID]map[txn.ID]bool)
	for i := 0; i < len(grants); i++ {
		for j := i + 1; j < len(grants); j++ {
			a, b := grants[i], grants[j]
			if a.id != b.id && a.step.Conflicts(b.step) {
				if succ[a.id] == nil {
					succ[a.id] = make(map[txn.ID]bool)
				}
				succ[a.id][b.id] = true
			}
		}
	}
	color := make(map[txn.ID]int)
	var dfs func(u txn.ID) bool
	dfs = func(u txn.ID) bool {
		color[u] = 1
		for v := range succ[u] {
			if color[v] == 1 {
				return true
			}
			if color[v] == 0 && dfs(v) {
				return true
			}
		}
		color[u] = 2
		return false
	}
	for u := range succ {
		if color[u] == 0 && dfs(u) {
			return false
		}
	}
	return true
}
