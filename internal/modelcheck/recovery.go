package modelcheck

// Recovery verification: an independent audit of a wal.Replay result
// against the raw per-node log scans it was computed from. wal.Replay
// already validates its own input; this checker re-derives the
// invariants from scratch — including rebuilding the committed
// dependency history inside a real wtpg.Graph and asking IT whether the
// logged precedence order is acyclic — so a bug in the replay code and
// a bug in its self-checks would have to agree to slip through. The
// kill-and-restart chaos battery runs this after every recovery.

import (
	"fmt"

	"batsched/internal/core/wtpg"
	"batsched/internal/txn"
	"batsched/internal/wal"
)

// VerifyRecovery checks a replay result against the node scans it came
// from:
//
//   - completeness: every committed transaction has a durable Begin, and
//     every durable Commit record is in the committed set;
//   - exclusivity: no transaction is in more than one of committed /
//     aborted / incomplete (re-aborted);
//   - acyclicity: the committed transactions' logged predecessor edges
//     (restricted to committed predecessors — dead ones impose no
//     order) form a DAG, verified by loading them into a wtpg.Graph as
//     resolved conflicts and running its critical-path cycle check;
//   - wave sanity: every committed transaction sits in a strictly later
//     wave than each of its committed predecessors, wave numbers are
//     dense in [0, Waves), and MaxParallel equals the widest wave.
func VerifyRecovery(scans []wal.NodeScan, rec *wal.Recovery) error {
	if rec == nil {
		return fmt.Errorf("modelcheck: nil recovery")
	}
	begins := make(map[txn.ID]wal.Record)
	commits := make(map[txn.ID]wal.Record)
	for _, ns := range scans {
		for _, r := range ns.Records {
			switch r.Kind {
			case wal.Begin:
				begins[r.Txn] = r
			case wal.Commit:
				commits[r.Txn] = r
			}
		}
	}
	committed := make(map[txn.ID]bool, len(rec.Committed))
	for _, id := range rec.Committed {
		if committed[id] {
			return fmt.Errorf("modelcheck: %v committed twice in replay order", id)
		}
		committed[id] = true
		if _, ok := begins[id]; !ok {
			return fmt.Errorf("modelcheck: committed %v has no durable begin record", id)
		}
		if _, ok := commits[id]; !ok {
			return fmt.Errorf("modelcheck: committed %v has no durable commit record", id)
		}
	}
	for id := range commits {
		if !committed[id] {
			return fmt.Errorf("modelcheck: durable commit record for %v missing from recovered committed set", id)
		}
	}
	for _, id := range rec.Aborted {
		if committed[id] {
			return fmt.Errorf("modelcheck: %v both committed and aborted", id)
		}
	}
	for _, b := range rec.Incomplete {
		if committed[b.Txn] {
			return fmt.Errorf("modelcheck: %v both committed and re-aborted as incomplete", b.Txn)
		}
		if _, ok := commits[b.Txn]; ok {
			return fmt.Errorf("modelcheck: %v re-aborted despite a durable commit record", b.Txn)
		}
	}

	// Rebuild the committed precedence history in a wtpg.Graph: each
	// logged predecessor edge becomes a resolved conflict, then the
	// graph's own cycle detection (CriticalPath errors on a cycle)
	// passes judgment on the order recovery replayed in.
	g := wtpg.New()
	for _, id := range rec.Committed {
		if err := g.AddNode(id, 1); err != nil {
			return fmt.Errorf("modelcheck: rebuild: %w", err)
		}
	}
	preds := func(id txn.ID) []txn.ID {
		seen := map[txn.ID]bool{}
		var out []txn.ID
		for _, p := range append(append([]txn.ID(nil), begins[id].Preds...), commits[id].Preds...) {
			if committed[p] && !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
		return out
	}
	for _, id := range rec.Committed {
		for _, p := range preds(id) {
			if _, _, ok := g.Resolved(p, id); ok {
				continue // edge already present from the other record
			}
			if err := g.AddConflict(p, id, 1, 1); err != nil {
				return fmt.Errorf("modelcheck: rebuild edge %v->%v: %w", p, id, err)
			}
			if err := g.Resolve(p, id); err != nil {
				return fmt.Errorf("modelcheck: resolve %v->%v: %w", p, id, err)
			}
		}
	}
	if _, err := g.CriticalPath(); err != nil {
		return fmt.Errorf("modelcheck: committed dependency history is cyclic: %w", err)
	}

	// Wave sanity: precedence respected, numbering dense, width honest.
	width := make(map[int]int)
	for _, id := range rec.Committed {
		w, ok := rec.Wave[id]
		if !ok {
			return fmt.Errorf("modelcheck: committed %v has no wave assignment", id)
		}
		if w < 0 || w >= rec.Waves {
			return fmt.Errorf("modelcheck: %v wave %d outside [0,%d)", id, w, rec.Waves)
		}
		width[w]++
		for _, p := range preds(id) {
			if pw := rec.Wave[p]; pw >= w {
				return fmt.Errorf("modelcheck: %v (wave %d) replayed no later than its predecessor %v (wave %d)", id, w, p, pw)
			}
		}
	}
	maxWidth := 0
	for w := 0; w < rec.Waves; w++ {
		if width[w] == 0 {
			return fmt.Errorf("modelcheck: wave %d is empty (of %d waves)", w, rec.Waves)
		}
		if width[w] > maxWidth {
			maxWidth = width[w]
		}
	}
	if rec.MaxParallel != maxWidth {
		return fmt.Errorf("modelcheck: MaxParallel %d but widest wave has %d", rec.MaxParallel, maxWidth)
	}
	if len(rec.Committed) == 0 && rec.Waves != 0 {
		return fmt.Errorf("modelcheck: empty committed set but %d waves", rec.Waves)
	}
	return nil
}
