package modelcheck

import (
	"fmt"

	"batsched/internal/core/sched"
	"batsched/internal/event"
	"batsched/internal/txn"
)

// CrashReport summarizes one crash exploration (ExploreCrashes).
type CrashReport struct {
	// Prefixes is the number of reachable schedule prefixes examined.
	Prefixes int
	// CrashPoints is the number of (prefix, victim) crashes injected: at
	// every prefix, every admitted-but-uncommitted transaction is killed
	// once on a fresh replay.
	CrashPoints int
	// Problems lists every recovery violation found (empty for a correct
	// scheduler): a cyclic WTPG after the splice, the dead transaction
	// still in the graph or holding a granted lock, broken lock-table
	// invariants, or survivors wedged by the crash.
	Problems []string
	// Truncated reports that MaxPrefixes stopped the exploration early.
	Truncated bool
}

// ExploreCrashes explores every reachable schedule prefix (the same
// state space as Explore) and, at each one, crashes every admitted
// uncommitted transaction in turn — the scheduler-level image of a data
// node dying under the transaction's bulk work. Each crash runs the
// public recovery path (sched.AbortTxn, i.e. wtpg.Splice for the
// graph schedulers) on a fresh replay of the prefix and then checks:
//
//   - lock-table invariants still hold (no conflicting holders);
//   - the dead transaction is gone from the WTPG and the graph is
//     still acyclic;
//   - the dead transaction holds no granted lock;
//   - the survivors can all be driven to commitment (no wedge).
//
// MaxPrefixes bounds the exploration (0 means 100000).
func ExploreCrashes(factory sched.Factory, txns []*txn.T, maxPrefixes int) (*CrashReport, error) {
	if len(txns) == 0 {
		return nil, fmt.Errorf("modelcheck: no transactions")
	}
	for _, t := range txns {
		if t == nil {
			return nil, fmt.Errorf("modelcheck: nil transaction")
		}
	}
	if maxPrefixes <= 0 {
		maxPrefixes = 100_000
	}
	rep := &CrashReport{}
	e := &crashExplorer{
		explorer: explorer{factory: factory, txns: txns},
		max:      maxPrefixes,
		rep:      rep,
	}
	e.walk(nil)
	return rep, nil
}

type crashExplorer struct {
	explorer
	max int
	rep *CrashReport
}

// walk visits every reachable prefix, crash-checking it before
// branching — the empty prefix included, where no one is admitted yet
// and the sweep is vacuous.
func (e *crashExplorer) walk(prefix []Action) {
	if e.rep.Truncated {
		return
	}
	e.rep.Prefixes++
	if e.rep.Prefixes > e.max {
		e.rep.Truncated = true
		return
	}
	_, pos := e.replay(prefix)
	for _, t := range e.txns {
		if p := pos[t.ID]; p >= 0 && p < len(t.Steps) {
			e.crashAt(prefix, t)
		}
	}
	now := event.Time(len(prefix) + 1)
	for _, t := range e.txns {
		p := pos[t.ID]
		if p == len(t.Steps) {
			continue
		}
		// Probe on a fresh replay, as in explorer.dfs: even refusals can
		// mutate scheduler caches.
		s, _ := e.replay(prefix)
		var a Action
		if p < 0 {
			if out := s.Admit(t, now); out.Decision != sched.Granted {
				continue
			}
			a = Action{Txn: t.ID, Step: -1}
		} else {
			if out := s.Request(t, p, now); out.Decision != sched.Granted {
				continue
			}
			a = Action{Txn: t.ID, Step: p}
		}
		e.walk(append(prefix, a))
		if e.rep.Truncated {
			return
		}
	}
}

// crashAt replays the prefix, kills the victim through the public
// recovery path and checks the post-crash state.
func (e *crashExplorer) crashAt(prefix []Action, victim *txn.T) {
	e.rep.CrashPoints++
	s, pos := e.replay(prefix)
	now := event.Time(len(prefix) + 1)
	sched.AbortTxn(s, victim, now)
	where := fmt.Sprintf("crash of %v after %v", victim.ID, prefix)
	if ci, ok := s.(interface{ CheckInvariants() error }); ok {
		if err := ci.CheckInvariants(); err != nil {
			e.problem("%s: lock invariants: %v", where, err)
			return
		}
	}
	if gh, ok := s.(sched.GraphHolder); ok && gh.Graph() != nil {
		g := gh.Graph()
		if g.Has(victim.ID) {
			e.problem("%s: dead transaction still in the WTPG", where)
			return
		}
		if _, err := g.CriticalPath(); err != nil {
			e.problem("%s: WTPG after splice: %v", where, err)
			return
		}
	}
	if lh, ok := s.(interface {
		LockHolders(txn.PartitionID) []txn.ID
	}); ok {
		for _, p := range e.partitions() {
			for _, h := range lh.LockHolders(p) {
				if h == victim.ID {
					e.problem("%s: dead transaction still holds a lock on P%d", where, p)
					return
				}
			}
		}
	}
	if !e.drain(s, pos, victim.ID, now) {
		e.problem("%s: survivors wedged", where)
	}
}

// partitions returns every partition any scenario transaction declares.
func (e *crashExplorer) partitions() []txn.PartitionID {
	seen := make(map[txn.PartitionID]bool)
	var out []txn.PartitionID
	for _, t := range e.txns {
		for _, s := range t.Steps {
			if !seen[s.Part] {
				seen[s.Part] = true
				out = append(out, s.Part)
			}
		}
	}
	return out
}

// drain greedily drives every survivor to commitment on the post-crash
// scheduler: repeated sweeps granting whatever is grantable until
// everything commits (true) or a sweep makes no progress (false — the
// crash stranded someone).
func (e *crashExplorer) drain(s sched.Scheduler, pos map[txn.ID]int, dead txn.ID, now event.Time) bool {
	for {
		progressed, remaining := false, false
		for _, t := range e.txns {
			if t.ID == dead {
				continue
			}
			p := pos[t.ID]
			if p == len(t.Steps) {
				continue
			}
			remaining = true
			now++
			if p < 0 {
				if out := s.Admit(t, now); out.Decision == sched.Granted {
					pos[t.ID] = 0
					progressed = true
				}
				continue
			}
			if out := s.Request(t, p, now); out.Decision == sched.Granted {
				s.ObjectDone(t, t.Steps[p].Cost, now)
				pos[t.ID] = p + 1
				if pos[t.ID] == len(t.Steps) {
					s.Commit(t, now)
				}
				progressed = true
			}
		}
		if !remaining {
			return true
		}
		if !progressed {
			return false
		}
	}
}

func (e *crashExplorer) problem(format string, args ...any) {
	e.rep.Problems = append(e.rep.Problems, fmt.Sprintf(format, args...))
}
