package modelcheck

import (
	"testing"

	"batsched/internal/core/sched"
	"batsched/internal/txn"
)

func r(p txn.PartitionID, c float64) txn.Step { return txn.Step{Mode: txn.Read, Part: p, Cost: c} }
func w(p txn.PartitionID, c float64) txn.Step { return txn.Step{Mode: txn.Write, Part: p, Cost: c} }

// allSchedulers are the factories whose full state space we explore.
func allSchedulers() []sched.Factory {
	return []sched.Factory{
		sched.ASLFactory(), sched.C2PLFactory(), sched.ChainFactory(),
		sched.KWTPGFactory(1), sched.KWTPGFactory(2),
		sched.ChainC2PLFactory(), sched.KC2PLFactory(2),
	}
}

// scenarios are the transaction sets explored exhaustively. They include
// the classic deadlock shapes the cautious schedulers must dodge.
func scenarios() map[string][]*txn.T {
	return map[string][]*txn.T{
		"figure1": {
			txn.New(1, []txn.Step{r(0, 1), r(1, 3), w(0, 1)}),
			txn.New(2, []txn.Step{r(2, 1), w(0, 1)}),
			txn.New(3, []txn.Step{w(2, 1), r(3, 3)}),
		},
		"crossing-writers": { // classic 2PL deadlock shape
			txn.New(1, []txn.Step{r(0, 1), w(1, 1)}),
			txn.New(2, []txn.Step{r(1, 1), w(0, 1)}),
		},
		"upgrade-pair": { // S-S then X-X upgrade deadlock shape
			txn.New(1, []txn.Step{r(0, 2), w(0, 1)}),
			txn.New(2, []txn.Step{r(0, 2), w(0, 1)}),
		},
		"triangle": { // three mutually conflicting writers
			txn.New(1, []txn.Step{w(0, 1), w(1, 1)}),
			txn.New(2, []txn.Step{w(1, 1), w(2, 1)}),
			txn.New(3, []txn.Step{w(2, 1), w(0, 1)}),
		},
		"hot-pair-plus-reader": {
			txn.New(1, []txn.Step{r(2, 5), w(0, 1), w(1, 1)}),
			txn.New(2, []txn.Step{r(3, 5), w(1, 1), w(0, 1)}),
			txn.New(3, []txn.Step{r(0, 1)}),
		},
		"disjoint": {
			txn.New(1, []txn.Step{w(0, 2)}),
			txn.New(2, []txn.Step{w(1, 2)}),
			txn.New(3, []txn.Step{r(2, 2)}),
		},
	}
}

// TestNoWedgesNoCycles: across every scheduler and scenario, every
// reachable schedule completes (no wedges) and is conflict serializable.
func TestNoWedgesNoCycles(t *testing.T) {
	for name, txns := range scenarios() {
		for _, f := range allSchedulers() {
			name, txns, f := name, txns, f
			t.Run(name+"/"+f.Label, func(t *testing.T) {
				t.Parallel()
				rep, err := Explore(f, txns, 50_000)
				if err != nil {
					t.Fatal(err)
				}
				if rep.Truncated {
					t.Fatalf("state space truncated at %d paths", rep.Paths)
				}
				if rep.Paths == 0 {
					t.Fatal("no complete schedules found")
				}
				if len(rep.Wedges) > 0 {
					t.Fatalf("wedged after %v (%d wedges total)", rep.Wedges[0], len(rep.Wedges))
				}
				if len(rep.NonSerializable) > 0 {
					t.Fatalf("non-serializable schedule %v", rep.NonSerializable[0])
				}
			})
		}
	}
}

// TestNODCIsNotSerializable: the upper-bound scheduler must exhibit
// non-serializable schedules on the crossing-writer scenario — a
// sanity check that the checker can actually find violations.
func TestNODCIsNotSerializable(t *testing.T) {
	rep, err := Explore(sched.NODCFactory(), scenarios()["crossing-writers"], 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Wedges) > 0 {
		t.Fatalf("NODC wedged: %v", rep.Wedges[0])
	}
	if len(rep.NonSerializable) == 0 {
		t.Fatal("checker failed to catch NODC's non-serializable schedules")
	}
}

// TestASLSchedulesAreSerial: ASL holds all locks for a transaction's
// whole lifetime, so on single-partition conflicts every schedule's
// grant sequence groups by transaction.
func TestASLSchedulesAreSerial(t *testing.T) {
	txns := []*txn.T{
		txn.New(1, []txn.Step{w(0, 1), w(0, 1)}),
		txn.New(2, []txn.Step{w(0, 1), w(0, 1)}),
	}
	rep, err := Explore(sched.ASLFactory(), txns, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Paths == 0 || len(rep.Wedges) > 0 {
		t.Fatalf("report: %+v", rep)
	}
}

func TestExploreValidation(t *testing.T) {
	if _, err := Explore(sched.C2PLFactory(), nil, 0); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := Explore(sched.C2PLFactory(), []*txn.T{nil}, 0); err == nil {
		t.Error("nil transaction accepted")
	}
}

func TestActionString(t *testing.T) {
	if got := (Action{Txn: 1, Step: -1}).String(); got != "T1:admit" {
		t.Errorf("String = %q", got)
	}
	if got := (Action{Txn: 2, Step: 3}).String(); got != "T2:s3" {
		t.Errorf("String = %q", got)
	}
}

// TestTruncation: a tiny MaxPaths stops the exploration early.
func TestTruncation(t *testing.T) {
	rep, err := Explore(sched.C2PLFactory(), scenarios()["figure1"], 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Truncated || rep.Paths != 1 {
		t.Errorf("report: %+v", rep)
	}
}
