package modelcheck

import (
	"strings"
	"testing"

	"batsched/internal/txn"
	"batsched/internal/wal"
)

// recScans builds a two-node history: 1,2 concurrent roots; 3 after
// both; 4 after 1; 5 aborted; 6 incomplete (begin only).
func recScans() []wal.NodeScan {
	rec := func(k wal.Kind, id txn.ID, node int, preds ...txn.ID) wal.Record {
		return wal.Record{Kind: k, Txn: id, Node: node, Preds: preds}
	}
	return []wal.NodeScan{
		{Node: 0, Records: []wal.Record{
			rec(wal.Begin, 1, 0),
			rec(wal.Begin, 3, 0, 1),
			rec(wal.Commit, 1, 0),
			rec(wal.Commit, 3, 0, 1, 2),
			rec(wal.Begin, 5, 0),
			rec(wal.Abort, 5, 0),
		}},
		{Node: 1, Records: []wal.Record{
			rec(wal.Begin, 2, 1),
			rec(wal.Begin, 4, 1, 1),
			rec(wal.Commit, 2, 1),
			rec(wal.Commit, 4, 1, 1),
			rec(wal.Begin, 6, 1, 4),
		}},
	}
}

func TestVerifyRecoveryAcceptsReplay(t *testing.T) {
	scans := recScans()
	rec, err := wal.Replay(scans, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyRecovery(scans, rec); err != nil {
		t.Fatalf("genuine replay rejected: %v", err)
	}
}

func TestVerifyRecoveryRejectsTampering(t *testing.T) {
	scans := recScans()
	cases := []struct {
		name   string
		tamper func(rec *wal.Recovery)
		want   string
	}{
		{"resurrect incomplete txn", func(rec *wal.Recovery) {
			rec.Committed = append(rec.Committed, 6)
			rec.Wave[6] = rec.Waves
			rec.Waves++
		}, "no durable commit"},
		{"drop a committed txn", func(rec *wal.Recovery) {
			rec.Committed = rec.Committed[:len(rec.Committed)-1]
		}, "missing from recovered committed set"},
		{"commit an aborted txn", func(rec *wal.Recovery) {
			rec.Aborted = nil
			rec.Committed = append(rec.Committed, 5)
			rec.Wave[5] = 0
		}, "no durable commit"},
		{"precedence-violating wave", func(rec *wal.Recovery) {
			rec.Wave[3] = 0 // 3 depends on 1 and 2
		}, "no later than its predecessor"},
		{"inflated MaxParallel", func(rec *wal.Recovery) {
			rec.MaxParallel++
		}, "widest wave"},
		{"abort a committed txn too", func(rec *wal.Recovery) {
			rec.Aborted = append(rec.Aborted, rec.Committed[0])
		}, "both committed and aborted"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec, err := wal.Replay(scans, 2, nil)
			if err != nil {
				t.Fatal(err)
			}
			tc.tamper(rec)
			err = VerifyRecovery(scans, rec)
			if err == nil {
				t.Fatal("tampered recovery accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
