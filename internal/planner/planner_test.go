package planner

import (
	"strings"
	"testing"

	"batsched/internal/core/sched"
	"batsched/internal/event"
	"batsched/internal/machine"
	"batsched/internal/txn"
	"batsched/internal/workload"
)

func testBatch(n int) []*txn.T {
	return RandomBatch(workload.Experiment1(16), n, 7)
}

func TestStrategyPlans(t *testing.T) {
	batch := testBatch(5)
	order, times := Flood{}.Plan(batch)
	if len(order) != 5 || len(times) != 5 {
		t.Fatalf("flood plan sizes %d/%d", len(order), len(times))
	}
	for i, at := range times {
		if at != 0 {
			t.Errorf("flood release %d at %v", i, at)
		}
	}
	_, times = Stagger{Gap: 100}.Plan(batch)
	for i, at := range times {
		if at != event.Time(i*100) {
			t.Errorf("stagger release %d at %v", i, at)
		}
	}
	order, _ = ByDemand{LongestFirst: true}.Plan(batch)
	for i := 1; i < len(order); i++ {
		if batch[order[i-1]].DeclaredTotal() < batch[order[i]].DeclaredTotal() {
			t.Errorf("longest-first out of order at %d", i)
		}
	}
	order, _ = ByDemand{}.Plan(batch)
	for i := 1; i < len(order); i++ {
		if batch[order[i-1]].DeclaredTotal() > batch[order[i]].DeclaredTotal() {
			t.Errorf("shortest-first out of order at %d", i)
		}
	}
}

func TestEvaluateSingleTransaction(t *testing.T) {
	batch := []*txn.T{txn.New(1, []txn.Step{{Mode: txn.Write, Part: 0, Cost: 2}})}
	ev, err := Evaluate(batch, machine.DefaultConfig(), sched.C2PLFactory(), Flood{})
	if err != nil {
		t.Fatal(err)
	}
	// admit 11 + grant 12 + 2 objects + commit 10 = 2022 ms.
	if ev.Makespan != 2022 {
		t.Errorf("makespan = %v, want 2022ms", ev.Makespan)
	}
	if ev.Retries != 0 {
		t.Errorf("retries = %d", ev.Retries)
	}
}

func TestEvaluateCompletesBatch(t *testing.T) {
	batch := testBatch(20)
	for _, f := range []sched.Factory{
		sched.ASLFactory(), sched.C2PLFactory(), sched.ChainFactory(), sched.KWTPGFactory(2),
	} {
		ev, err := Evaluate(batch, machine.DefaultConfig(), f, Flood{})
		if err != nil {
			t.Fatalf("%s: %v", f.Label, err)
		}
		if ev.Makespan <= 0 {
			t.Errorf("%s: makespan %v", f.Label, ev.Makespan)
		}
	}
}

// The total demand of the test batch bounds the makespan from below:
// the busiest node must process its share of objects serially.
func TestMakespanLowerBound(t *testing.T) {
	mc := machine.DefaultConfig()
	batch := testBatch(12)
	perNode := make(map[int]float64)
	for _, tx := range batch {
		for _, s := range tx.Steps {
			perNode[mc.NodeOf(s.Part)] += s.Cost
		}
	}
	var busiest float64
	for _, v := range perNode {
		if v > busiest {
			busiest = v
		}
	}
	lower := event.Time(busiest) * mc.ObjTime
	ev, err := Evaluate(batch, mc, sched.KWTPGFactory(2), Flood{})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Makespan < lower {
		t.Errorf("makespan %v below busiest-node bound %v", ev.Makespan, lower)
	}
}

func TestCompareSortsByMakespan(t *testing.T) {
	batch := testBatch(10)
	evals, err := Compare(batch, machine.DefaultConfig(),
		[]sched.Factory{sched.KWTPGFactory(2), sched.C2PLFactory()},
		[]Strategy{Flood{}, Stagger{Gap: 2000}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(evals) != 4 {
		t.Fatalf("evals = %d", len(evals))
	}
	for i := 1; i < len(evals); i++ {
		if evals[i-1].Makespan > evals[i].Makespan {
			t.Error("not sorted by makespan")
		}
	}
	out := RenderTable(evals)
	if !strings.Contains(out, "makespan") || !strings.Contains(out, "flood") {
		t.Errorf("render:\n%s", out)
	}
}

func TestEvaluateErrors(t *testing.T) {
	if _, err := Evaluate(nil, machine.DefaultConfig(), sched.C2PLFactory(), Flood{}); err == nil {
		t.Error("empty batch accepted")
	}
}

func TestEvaluateDeterministic(t *testing.T) {
	batch := testBatch(15)
	a, err := Evaluate(batch, machine.DefaultConfig(), sched.ChainFactory(), ByDemand{LongestFirst: true, Gap: 500})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Evaluate(batch, machine.DefaultConfig(), sched.ChainFactory(), ByDemand{LongestFirst: true, Gap: 500})
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.MeanRT != b.MeanRT {
		t.Errorf("nondeterministic planning: %+v vs %+v", a, b)
	}
}
