// Package planner schedules a *fixed* batch of BATs for minimum
// makespan — the paper's actual operational problem: "the off-line
// service needs to finish many BATs in a much shorter time" (§1).
//
// Given a batch, a machine and a scheduler, the planner evaluates release
// strategies by deterministic simulation (everything arrives by explicit
// schedule, nothing is random) and reports the makespan — the commit time
// of the last transaction. Strategies:
//
//   - Flood: release everything at t = 0 and let the concurrency control
//     sort it out. Simple; admission-constrained schedulers (ASL, CHAIN,
//     K-WTPG) burn retry delays at the start.
//   - Stagger: release at a fixed inter-release gap, smoothing the
//     admission burst.
//   - LongestFirst / ShortestFirst: flood, but order the batch by
//     declared total demand — classic makespan heuristics (LPT) adapted
//     to release order, which decides lock-table registration order and
//     therefore grant priority under FIFO control.
//
// The planner is a consumer of the public simulation machinery: it shows
// how a downstream user builds tooling on the library.
package planner

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"batsched/internal/core/sched"
	"batsched/internal/event"
	"batsched/internal/machine"
	"batsched/internal/sim"
	"batsched/internal/txn"
	"batsched/internal/workload"
)

// Strategy orders and times the release of a batch.
type Strategy interface {
	// Name identifies the strategy in reports.
	Name() string
	// Plan returns the release order (indices into the batch) and the
	// release time of each position.
	Plan(batch []*txn.T) (order []int, times []event.Time)
}

// Flood releases the whole batch, in given order, at t = 0.
type Flood struct{}

// Name implements Strategy.
func (Flood) Name() string { return "flood" }

// Plan implements Strategy.
func (Flood) Plan(batch []*txn.T) ([]int, []event.Time) {
	order := identity(len(batch))
	return order, make([]event.Time, len(batch))
}

// Stagger releases one transaction every Gap clocks, in given order.
type Stagger struct {
	Gap event.Time
}

// Name implements Strategy.
func (s Stagger) Name() string { return fmt.Sprintf("stagger(%v)", s.Gap) }

// Plan implements Strategy.
func (s Stagger) Plan(batch []*txn.T) ([]int, []event.Time) {
	order := identity(len(batch))
	times := make([]event.Time, len(batch))
	for i := range times {
		times[i] = event.Time(i) * s.Gap
	}
	return order, times
}

// ByDemand floods the batch ordered by declared total demand.
type ByDemand struct {
	// LongestFirst picks LPT order; otherwise shortest-first.
	LongestFirst bool
	// Gap optionally staggers the ordered releases.
	Gap event.Time
}

// Name implements Strategy.
func (b ByDemand) Name() string {
	n := "shortest-first"
	if b.LongestFirst {
		n = "longest-first"
	}
	if b.Gap > 0 {
		n += fmt.Sprintf("+stagger(%v)", b.Gap)
	}
	return n
}

// Plan implements Strategy.
func (b ByDemand) Plan(batch []*txn.T) ([]int, []event.Time) {
	order := identity(len(batch))
	sort.SliceStable(order, func(i, j int) bool {
		di, dj := batch[order[i]].DeclaredTotal(), batch[order[j]].DeclaredTotal()
		if b.LongestFirst {
			return di > dj
		}
		return di < dj
	})
	times := make([]event.Time, len(batch))
	for i := range times {
		times[i] = event.Time(i) * b.Gap
	}
	return order, times
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// Evaluation is the outcome of one (strategy, scheduler) plan.
type Evaluation struct {
	Strategy  string
	Scheduler string
	// Makespan is the commit time of the last transaction.
	Makespan event.Time
	// MeanRT is the mean response time (from release) in seconds.
	MeanRT float64
	// Retries counts admission rejections plus request delays.
	Retries int
}

// replayWorkload feeds a pre-ordered batch to the simulator.
type replayWorkload struct {
	batch []*txn.T
	next  int
}

func (r *replayWorkload) Name() string { return "batch-replay" }

func (r *replayWorkload) Next(id txn.ID, _ *rand.Rand) *txn.T {
	if r.next >= len(r.batch) {
		panic("planner: batch exhausted")
	}
	t := r.batch[r.next]
	r.next++
	return &txn.T{ID: id, Steps: t.Steps, Declared: t.Declared}
}

// Evaluate simulates one plan and returns its evaluation. The horizon is
// sized automatically from the batch's total demand.
func Evaluate(batch []*txn.T, mc machine.Config, f sched.Factory, s Strategy) (*Evaluation, error) {
	if len(batch) == 0 {
		return nil, fmt.Errorf("planner: empty batch")
	}
	order, times := s.Plan(batch)
	if len(order) != len(batch) || len(times) != len(batch) {
		return nil, fmt.Errorf("planner: strategy %s returned %d/%d entries for %d transactions",
			s.Name(), len(order), len(times), len(batch))
	}
	ordered := make([]*txn.T, len(batch))
	for pos, idx := range order {
		if idx < 0 || idx >= len(batch) {
			return nil, fmt.Errorf("planner: strategy %s order index %d out of range", s.Name(), idx)
		}
		ordered[pos] = batch[idx]
	}
	// Horizon: serial execution bound plus generous retry slack.
	var total float64
	var lastRelease event.Time
	for _, t := range batch {
		total += t.TrueTotal()
	}
	for _, at := range times {
		if at > lastRelease {
			lastRelease = at
		}
	}
	horizon := lastRelease + event.Time(total)*mc.ObjTime*2 + 600_000
	cfg := sim.Config{
		Machine:              mc,
		Scheduler:            f,
		Workload:             &replayWorkload{batch: ordered},
		ArrivalTimes:         times,
		Horizon:              horizon,
		Seed:                 1,
		CheckSerializability: f.Label != "NODC",
	}
	res, err := sim.Run(cfg)
	if err != nil {
		return nil, err
	}
	if res.Completed != len(batch) {
		return nil, fmt.Errorf("planner: %s/%s finished %d of %d transactions within %v",
			f.Label, s.Name(), res.Completed, len(batch), horizon)
	}
	return &Evaluation{
		Strategy:  s.Name(),
		Scheduler: res.Scheduler,
		Makespan:  res.LastCompletion,
		MeanRT:    res.MeanRT,
		Retries:   res.AdmissionAborts + res.AdmissionDelays + res.RequestDelays,
	}, nil
}

// Compare evaluates every (strategy × scheduler) combination and returns
// the evaluations sorted by makespan.
func Compare(batch []*txn.T, mc machine.Config, factories []sched.Factory, strategies []Strategy) ([]*Evaluation, error) {
	var out []*Evaluation
	for _, f := range factories {
		for _, s := range strategies {
			ev, err := Evaluate(batch, mc, f, s)
			if err != nil {
				return nil, err
			}
			out = append(out, ev)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Makespan < out[j].Makespan })
	return out, nil
}

// RandomBatch draws n transactions from a workload generator with a
// fixed seed — a reproducible batch for planning.
func RandomBatch(gen workload.Generator, n int, seed int64) []*txn.T {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*txn.T, n)
	for i := range out {
		out[i] = gen.Next(txn.ID(i+1), rng)
	}
	return out
}

// RenderTable formats evaluations as a fixed-width report.
func RenderTable(evals []*Evaluation) string {
	var b strings.Builder
	fmt.Fprintf(&b, "  %-10s %-26s %12s %10s %8s\n",
		"scheduler", "strategy", "makespan", "meanRT(s)", "retries")
	for _, e := range evals {
		fmt.Fprintf(&b, "  %-10s %-26s %12v %10.1f %8d\n",
			e.Scheduler, e.Strategy, e.Makespan, e.MeanRT, e.Retries)
	}
	return b.String()
}
