package wal

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"batsched/internal/event"
	"batsched/internal/txn"
)

func randRecord(rng *rand.Rand) Record {
	r := Record{
		Kind: Kind(1 + rng.Intn(3)),
		Txn:  txn.ID(1 + rng.Int63n(1_000_000)),
		Node: rng.Intn(64),
		At:   event.Time(rng.Int63n(10_000_000)),
	}
	if r.Kind == Begin {
		for i, n := 0, rng.Intn(6); i < n; i++ {
			r.Steps = append(r.Steps, StepRef{
				Part:     txn.PartitionID(rng.Intn(256)),
				Mode:     txn.Mode(rng.Intn(2)),
				Declared: math.Trunc(rng.Float64()*1000) / 8,
			})
		}
	}
	if r.Kind != Abort {
		for i, n := 0, rng.Intn(8); i < n; i++ {
			r.Preds = append(r.Preds, txn.ID(1+rng.Int63n(1_000_000)))
		}
	}
	return r
}

// TestRecordRoundTrip is the encode/decode property test: random
// records survive a frame round trip exactly, alone and concatenated.
func TestRecordRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		want := randRecord(rng)
		buf, err := appendRecord(nil, want)
		if err != nil {
			t.Fatal(err)
		}
		got, n, err := decodeRecord(buf)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if n != len(buf) {
			t.Fatalf("record %d: consumed %d of %d bytes", i, n, len(buf))
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("record %d: round trip\n got %+v\nwant %+v", i, got, want)
		}
	}
	// Concatenated stream round trip.
	var stream []byte
	var want []Record
	for i := 0; i < 200; i++ {
		r := randRecord(rng)
		want = append(want, r)
		var err error
		if stream, err = appendRecord(stream, r); err != nil {
			t.Fatal(err)
		}
	}
	got, valid, stop := scanPrefix(stream)
	if stop != nil || valid != len(stream) {
		t.Fatalf("clean stream: stop=%v valid=%d/%d", stop, valid, len(stream))
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("stream round trip mismatch")
	}
}

// TestCorruptionFuzz flips random bits and truncates random tails over a
// valid stream: the scan must never return garbage — every decoded
// record is one of the originals, in order, and truncation always
// recovers the longest valid prefix.
func TestCorruptionFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var stream []byte
	var offsets []int // frame start offsets
	var want []Record
	for i := 0; i < 60; i++ {
		r := randRecord(rng)
		offsets = append(offsets, len(stream))
		want = append(want, r)
		var err error
		if stream, err = appendRecord(stream, r); err != nil {
			t.Fatal(err)
		}
	}
	prefixLen := func(pos int) (frames, bytes int) {
		for i, off := range offsets {
			end := len(stream)
			if i+1 < len(offsets) {
				end = offsets[i+1]
			}
			if pos < end {
				return i, off
			}
		}
		return len(want), len(stream)
	}
	boundary := make(map[int]bool, len(offsets))
	for _, off := range offsets {
		boundary[off] = true
	}
	for trial := 0; trial < 3000; trial++ {
		b := append([]byte(nil), stream...)
		pos := rng.Intn(len(b))
		torn := rng.Intn(2) == 1
		if torn {
			b = b[:pos] // torn tail
		} else {
			b[pos] ^= 1 << rng.Intn(8) // bit flip
		}
		minFrames, minBytes := prefixLen(pos)
		recs, valid, stop := scanPrefix(b)
		if stop == nil && !(torn && boundary[pos]) {
			// Only a truncation exactly at a frame boundary may scan
			// clean; a bit flip never does (CRC32 catches every
			// single-bit error).
			t.Fatalf("trial %d: damaged stream at %d scanned clean", trial, pos)
		}
		if len(recs) != minFrames || valid != minBytes {
			t.Fatalf("trial %d: damage at %d: got %d frames/%d bytes, want %d/%d",
				trial, pos, len(recs), valid, minFrames, minBytes)
		}
		for i, r := range recs {
			if !reflect.DeepEqual(r, want[i]) {
				t.Fatalf("trial %d: surviving record %d mutated", trial, i)
			}
		}
	}
}

// TestOpenTruncatesTornTail writes records, crashes with a partial
// flush, and reopens: the reopened log must contain exactly the synced
// prefix, and appending must continue cleanly after the truncation.
func TestOpenTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	synced := []Record{
		{Kind: Begin, Txn: 1, Node: 0, At: 10, Preds: []txn.ID{9}},
		{Kind: Begin, Txn: 2, Node: 1, At: 20},
		{Kind: Commit, Txn: 1, Node: 0, At: 30, Preds: []txn.ID{9}},
	}
	for _, r := range synced {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	// These never sync; Crash writes a partial prefix of them.
	l.Append(Record{Kind: Begin, Txn: 3, Node: 0, At: 40})
	l.Append(Record{Kind: Commit, Txn: 2, Node: 1, At: 41})
	l.Crash(0.5)

	scans, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	var got []Record
	var torn int64
	for _, sc := range scans {
		got = append(got, sc.Records...)
		torn += sc.TruncatedBytes
	}
	if len(got) != len(synced) {
		t.Fatalf("recovered %d records, want %d (synced prefix only): %+v", len(got), len(synced), got)
	}
	if torn == 0 {
		t.Fatal("Crash(0.5) left no torn tail to truncate")
	}

	// Reopen for appending: the torn tail must be gone and new appends
	// must land after the valid prefix.
	l2, err := Open(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Append(Record{Kind: Abort, Txn: 3, Node: 0, At: 99}); err != nil {
		t.Fatal(err)
	}
	if _, err := l2.Sync(); err != nil {
		t.Fatal(err)
	}
	if st := l2.Stats(); st.TruncatedBytes == 0 {
		t.Fatal("reopen reported no truncated bytes")
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	scans, err = Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	got = nil
	for _, sc := range scans {
		got = append(got, sc.Records...)
		if sc.TruncatedBytes != 0 {
			t.Fatalf("node %d still torn after reopen+close", sc.Node)
		}
	}
	if len(got) != len(synced)+1 {
		t.Fatalf("after reopen: %d records, want %d", len(got), len(synced)+1)
	}
}

// TestGroupCommit hammers Append+Sync from many goroutines and checks
// that syncs batched: strictly fewer fsync passes than records, with
// every record durable at the end.
func TestGroupCommit(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Stretch each fsync pass so concurrent writers pile up behind it —
	// otherwise a single-core host can serialize every Append+Sync pair
	// and no batch ever forms.
	l.syncHook = func() { time.Sleep(200 * time.Microsecond) }
	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := txn.ID(1 + w*perWriter + i)
				if err := l.Append(Record{Kind: Begin, Txn: id, Node: int(id) % 4, At: event.Time(i)}); err != nil {
					t.Error(err)
					return
				}
				if _, err := l.Sync(); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := l.Stats()
	if st.Appends != writers*perWriter || st.SyncedRecords != writers*perWriter {
		t.Fatalf("appends %d synced %d, want %d", st.Appends, st.SyncedRecords, writers*perWriter)
	}
	if st.Syncs >= writers*perWriter {
		t.Fatalf("no group commit: %d fsync passes for %d records", st.Syncs, writers*perWriter)
	}
	if st.MaxBatch < 2 {
		t.Fatalf("max batch %d, expected some pass to carry multiple records", st.MaxBatch)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	scans, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, sc := range scans {
		n += len(sc.Records)
	}
	if n != writers*perWriter {
		t.Fatalf("recovered %d records, want %d", n, writers*perWriter)
	}
}

// TestReplayWaves pins the wave schedule on a known DAG:
//
//	1   2     (wave 0)
//	|\ /|
//	3 4 5     (wave 1: 3←1, 4←1,2, 5←2)
//	 \|
//	  6       (wave 2: 6←3,4)
//
// plus an aborted 7 and an incomplete 8 that a committed 6 depended on
// (the dead predecessor must not constrain 6... it is pruned).
func TestReplayWaves(t *testing.T) {
	mk := func(id txn.ID, node int, preds ...txn.ID) []Record {
		return []Record{
			{Kind: Begin, Txn: id, Node: node, At: event.Time(id), Preds: preds},
			{Kind: Commit, Txn: id, Node: node, At: event.Time(id) + 100, Preds: preds},
		}
	}
	var recs []Record
	recs = append(recs, mk(1, 0)...)
	recs = append(recs, mk(2, 1)...)
	recs = append(recs, mk(3, 0, 1)...)
	recs = append(recs, mk(4, 1, 1, 2)...)
	recs = append(recs, mk(5, 2, 2)...)
	recs = append(recs, mk(6, 2, 3, 4, 8)...) // 8 never committed
	recs = append(recs,
		Record{Kind: Begin, Txn: 7, Node: 3, At: 1},
		Record{Kind: Abort, Txn: 7, Node: 3, At: 2},
		Record{Kind: Begin, Txn: 8, Node: 3, At: 3})
	scans := []NodeScan{{Node: 0, Records: recs}}

	var mu sync.Mutex
	applied := map[txn.ID]int{}
	rec, err := Replay(scans, 4, func(b Record, wave int) {
		mu.Lock()
		applied[b.Txn] = wave
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	wantWave := map[txn.ID]int{1: 0, 2: 0, 3: 1, 4: 1, 5: 1, 6: 2}
	if !reflect.DeepEqual(rec.Wave, wantWave) {
		t.Fatalf("waves %v, want %v", rec.Wave, wantWave)
	}
	if !reflect.DeepEqual(applied, wantWave) {
		t.Fatalf("applied %v, want %v", applied, wantWave)
	}
	if rec.Waves != 3 || rec.MaxParallel != 3 {
		t.Fatalf("Waves=%d MaxParallel=%d, want 3/3", rec.Waves, rec.MaxParallel)
	}
	if want := []txn.ID{1, 2, 3, 4, 5, 6}; !reflect.DeepEqual(rec.Committed, want) {
		t.Fatalf("Committed %v, want %v", rec.Committed, want)
	}
	if want := []txn.ID{7}; !reflect.DeepEqual(rec.Aborted, want) {
		t.Fatalf("Aborted %v, want %v", rec.Aborted, want)
	}
	if len(rec.Incomplete) != 1 || rec.Incomplete[0].Txn != 8 {
		t.Fatalf("Incomplete %+v, want just T8", rec.Incomplete)
	}
}

// TestReplayRejectsCorruptHistories covers the structural error paths.
func TestReplayRejectsCorruptHistories(t *testing.T) {
	cases := []struct {
		name string
		recs []Record
	}{
		{"commit without begin", []Record{{Kind: Commit, Txn: 1}}},
		{"abort without begin", []Record{{Kind: Abort, Txn: 1}}},
		{"duplicate begin", []Record{{Kind: Begin, Txn: 1}, {Kind: Begin, Txn: 1}}},
		{"duplicate commit", []Record{{Kind: Begin, Txn: 1}, {Kind: Commit, Txn: 1}, {Kind: Commit, Txn: 1}}},
		{"commit and abort", []Record{{Kind: Begin, Txn: 1}, {Kind: Commit, Txn: 1}, {Kind: Abort, Txn: 1}}},
		{"cycle", []Record{
			{Kind: Begin, Txn: 1, Preds: []txn.ID{2}}, {Kind: Commit, Txn: 1, Preds: []txn.ID{2}},
			{Kind: Begin, Txn: 2, Preds: []txn.ID{1}}, {Kind: Commit, Txn: 2, Preds: []txn.ID{1}},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Replay([]NodeScan{{Records: tc.recs}}, 1, nil); err == nil {
				t.Fatal("Replay accepted a corrupt history")
			}
		})
	}
}

// TestOpenRejectsForeignFile ensures a non-WAL file is an error, not a
// silent truncate-to-zero.
func TestOpenRejectsForeignFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, nodeFileName(0))
	if err := os.WriteFile(path, []byte("definitely not a WAL file"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, 1); err == nil {
		t.Fatal("Open accepted a foreign file")
	}
	if _, err := Scan(dir); err == nil {
		t.Fatal("Scan accepted a foreign file")
	}
}
