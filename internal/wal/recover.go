package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"batsched/internal/txn"
)

// NodeScan is the decoded valid prefix of one node's log.
type NodeScan struct {
	Node           int
	Records        []Record
	ValidBytes     int64 // frame bytes decoded (header excluded)
	TruncatedBytes int64 // torn/corrupt tail bytes ignored
}

// Scan reads every node log under dir in parallel (one goroutine per
// file — recovery reads are embarrassingly parallel across nodes),
// applying the torn-tail truncation rule: each file contributes its
// longest valid prefix. Scan never modifies the files; Open performs
// the actual truncation when the log is reopened for appending.
func Scan(dir string) ([]NodeScan, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var nodes []int
	for _, e := range ents {
		var node int
		if _, err := fmt.Sscanf(e.Name(), "node-%d.wal", &node); err == nil {
			nodes = append(nodes, node)
		}
	}
	sort.Ints(nodes)
	scans := make([]NodeScan, len(nodes))
	errs := make([]error, len(nodes))
	var wg sync.WaitGroup
	for i, node := range nodes {
		wg.Add(1)
		go func(i, node int) {
			defer wg.Done()
			scans[i], errs[i] = scanNode(filepath.Join(dir, nodeFileName(node)), node)
		}(i, node)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return scans, nil
}

func scanNode(path string, node int) (NodeScan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return NodeScan{}, fmt.Errorf("wal: %w", err)
	}
	sc := NodeScan{Node: node}
	if len(data) < fileHeaderLen {
		// Torn mid-header: the node never synced a single record.
		sc.TruncatedBytes = int64(len(data))
		return sc, nil
	}
	hnode, err := parseHeader(data)
	if err != nil {
		return NodeScan{}, fmt.Errorf("wal: %s: %w", path, err)
	}
	if hnode != node {
		return NodeScan{}, fmt.Errorf("wal: %s: header names node %d", path, hnode)
	}
	recs, valid, _ := scanPrefix(data[fileHeaderLen:])
	sc.Records = recs
	sc.ValidBytes = int64(valid)
	sc.TruncatedBytes = int64(len(data) - fileHeaderLen - valid)
	return sc, nil
}

// Recovery reports what a Replay reconstructed.
type Recovery struct {
	// Committed lists every durably committed transaction in replay
	// order: wave-major, ascending id within a wave.
	Committed []txn.ID
	// Aborted lists transactions with an explicit abort record.
	Aborted []txn.ID
	// Incomplete holds the Begin records with no completion record —
	// transactions in flight at the crash. Recovery must re-abort them
	// (they held locks but never committed); live.Recover appends the
	// abort records.
	Incomplete []Record
	// Wave maps each committed transaction to its topological replay
	// wave; every logged committed predecessor lands in a strictly
	// earlier wave.
	Wave map[txn.ID]int
	// Waves and MaxParallel summarize the replay schedule: number of
	// topological waves and the widest wave — the replay parallelism
	// the dependency log permits, independent of worker count.
	Waves       int
	MaxParallel int
	// Records and TruncatedBytes total the scans' valid records and
	// discarded torn-tail bytes.
	Records        int
	TruncatedBytes int64
	// Elapsed is the wall time Replay took (scan time excluded).
	Elapsed time.Duration
}

// Replay reconstructs the committed history from per-node scans and
// replays it in parallel, constrained only by the logged predecessor
// edges: wave w holds every committed transaction whose committed
// predecessors all lie in waves < w, and apply runs concurrently across
// the transactions of one wave on up to workers goroutines (workers < 1
// means one per transaction). apply — called as apply(begin, wave) with
// the transaction's Begin record — may be nil to compute the schedule
// without replaying; when non-nil it must be safe for concurrent calls
// within a wave.
//
// Predecessor edges pointing at transactions that did not durably commit
// (aborted, incomplete, or lost to a torn tail) impose no ordering: a
// waiter observed the predecessor's locks, and a lost predecessor's
// effects were never durable. A cycle among committed records is
// corruption and returns an error, as do duplicate Begin/completion
// records and completions without a Begin.
func Replay(scans []NodeScan, workers int, apply func(begin Record, wave int)) (*Recovery, error) {
	start := time.Now()
	rec := &Recovery{Wave: make(map[txn.ID]int)}
	begins := make(map[txn.ID]Record)
	commits := make(map[txn.ID]Record)
	aborts := make(map[txn.ID]Record)
	for _, sc := range scans {
		rec.Records += len(sc.Records)
		rec.TruncatedBytes += sc.TruncatedBytes
		for _, r := range sc.Records {
			switch r.Kind {
			case Begin:
				if _, dup := begins[r.Txn]; dup {
					return nil, fmt.Errorf("wal: duplicate begin for %v", r.Txn)
				}
				begins[r.Txn] = r
			case Commit:
				if _, dup := commits[r.Txn]; dup {
					return nil, fmt.Errorf("wal: duplicate commit for %v", r.Txn)
				}
				commits[r.Txn] = r
			case Abort:
				if _, dup := aborts[r.Txn]; dup {
					return nil, fmt.Errorf("wal: duplicate abort for %v", r.Txn)
				}
				aborts[r.Txn] = r
			}
		}
	}
	for id := range commits {
		if _, ok := begins[id]; !ok {
			return nil, fmt.Errorf("wal: commit without begin for %v", id)
		}
		if _, both := aborts[id]; both {
			return nil, fmt.Errorf("wal: %v both committed and aborted", id)
		}
	}
	for id := range aborts {
		if _, ok := begins[id]; !ok {
			return nil, fmt.Errorf("wal: abort without begin for %v", id)
		}
		rec.Aborted = append(rec.Aborted, id)
	}
	sortIDs(rec.Aborted)
	for id, b := range begins {
		if _, done := commits[id]; done {
			continue
		}
		if _, done := aborts[id]; done {
			continue
		}
		rec.Incomplete = append(rec.Incomplete, b)
	}
	sort.Slice(rec.Incomplete, func(i, j int) bool { return rec.Incomplete[i].Txn < rec.Incomplete[j].Txn })

	// Dependency DAG over the committed set: union of admission-time
	// (Begin) and final (Commit) predecessor sets, filtered to committed.
	succs := make(map[txn.ID][]txn.ID, len(commits))
	indeg := make(map[txn.ID]int, len(commits))
	for id := range commits {
		indeg[id] = 0
	}
	for id := range commits {
		for _, p := range predUnion(begins[id], commits[id]) {
			if _, committed := commits[p]; !committed {
				continue
			}
			succs[p] = append(succs[p], id)
			indeg[id]++
		}
	}

	// Kahn by waves; each wave is an antichain and replays in parallel.
	frontier := make([]txn.ID, 0, len(indeg))
	for id, d := range indeg {
		if d == 0 {
			frontier = append(frontier, id)
		}
	}
	sortIDs(frontier)
	replayed := 0
	for len(frontier) > 0 {
		wave := rec.Waves
		rec.Waves++
		if len(frontier) > rec.MaxParallel {
			rec.MaxParallel = len(frontier)
		}
		for _, id := range frontier {
			rec.Wave[id] = wave
		}
		rec.Committed = append(rec.Committed, frontier...)
		if apply != nil {
			runWave(frontier, begins, workers, wave, apply)
		}
		replayed += len(frontier)
		var next []txn.ID
		for _, id := range frontier {
			for _, s := range succs[id] {
				if indeg[s]--; indeg[s] == 0 {
					next = append(next, s)
				}
			}
		}
		sortIDs(next)
		frontier = next
	}
	if replayed != len(commits) {
		return nil, fmt.Errorf("wal: dependency cycle among committed records (%d of %d replayable)",
			replayed, len(commits))
	}
	rec.Elapsed = time.Since(start)
	return rec, nil
}

// predUnion merges the Begin- and Commit-record predecessor sets.
func predUnion(b, c Record) []txn.ID {
	if len(c.Preds) == 0 {
		return b.Preds
	}
	if len(b.Preds) == 0 {
		return c.Preds
	}
	seen := make(map[txn.ID]bool, len(b.Preds)+len(c.Preds))
	out := make([]txn.ID, 0, len(b.Preds)+len(c.Preds))
	for _, ids := range [2][]txn.ID{b.Preds, c.Preds} {
		for _, id := range ids {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	return out
}

// runWave applies one wave across at most workers goroutines.
func runWave(wave []txn.ID, begins map[txn.ID]Record, workers int, w int, apply func(Record, int)) {
	if workers < 1 || workers > len(wave) {
		workers = len(wave)
	}
	if workers <= 1 {
		for _, id := range wave {
			apply(begins[id], w)
		}
		return
	}
	var wg sync.WaitGroup
	ch := make(chan txn.ID)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for id := range ch {
				apply(begins[id], w)
			}
		}()
	}
	for _, id := range wave {
		ch <- id
	}
	close(ch)
	wg.Wait()
}

func sortIDs(ids []txn.ID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
