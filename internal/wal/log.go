package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Log is a set of per-node append-only logs under one directory
// (node-0000.wal, node-0001.wal, ...). Append buffers a record in memory
// against its node's log; Sync makes everything appended so far durable
// with group-commit batching: concurrent callers piggyback on a single
// write+fsync pass instead of issuing one fsync each.
//
// The pending buffers deliberately live in user space (not bufio, not
// the kernel page cache model): Crash discards them the way SIGKILL
// discards a process's unflushed state, optionally leaving a partial —
// torn — prefix behind, which is exactly what the torn-tail truncation
// rule and the kill-and-restart chaos battery exercise.
//
// Log is safe for concurrent use.
type Log struct {
	dir string

	mu       sync.Mutex
	syncDone sync.Cond // broadcast after every sync pass
	files    []*nodeLog

	appendGen uint64 // bumped per Append
	syncedGen uint64 // appendGen known durable
	syncing   bool
	syncErr   error // sticky: an fsync failure poisons the log
	closed    bool

	appends     uint64
	syncs       uint64
	syncedRecs  uint64
	maxBatch    int
	lastBatch   int
	truncatedIn int64 // torn bytes discarded while opening existing files

	// syncHook, when set (tests only), runs during the unlocked IO phase
	// of a sync pass — stretching it lets tests force group-commit
	// pile-ups deterministically even on a single-core host.
	syncHook func()
}

type nodeLog struct {
	f           *os.File
	pending     []byte
	pendingRecs int
}

// Stats is a snapshot of log-level counters.
type Stats struct {
	Appends        uint64 // records appended
	Syncs          uint64 // fsync passes (group commits)
	SyncedRecords  uint64 // records made durable
	MaxBatch       int    // most records made durable by one sync pass
	TruncatedBytes int64  // torn bytes discarded when opening existing logs
}

func nodeFileName(node int) string { return fmt.Sprintf("node-%04d.wal", node) }

// Open opens (creating as needed) the per-node logs under dir for at
// least n nodes; existing node files beyond n are opened too, so a
// recovery over a smaller topology still appends completion records to
// the right log. Existing files are validated and truncated to their
// longest valid prefix — the torn tail a crash left behind is discarded
// before any new append.
func Open(dir string, n int) (*Log, error) {
	if n < 1 {
		return nil, fmt.Errorf("wal: Open with %d nodes", n)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if hi, err := highestNode(dir); err != nil {
		return nil, err
	} else if hi+1 > n {
		n = hi + 1
	}
	l := &Log{dir: dir, files: make([]*nodeLog, n)}
	l.syncDone.L = &l.mu
	for node := 0; node < n; node++ {
		nl, torn, err := openNode(filepath.Join(dir, nodeFileName(node)), node)
		if err != nil {
			l.closeFiles()
			return nil, err
		}
		l.files[node] = nl
		l.truncatedIn += torn
	}
	return l, nil
}

func highestNode(dir string) (int, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return -1, fmt.Errorf("wal: %w", err)
	}
	hi := -1
	for _, e := range ents {
		var node int
		if _, err := fmt.Sscanf(e.Name(), "node-%d.wal", &node); err == nil && node > hi {
			hi = node
		}
	}
	return hi, nil
}

// openNode opens one node file for appending, truncating a torn tail.
// A brand-new (or fully torn-header) file gets a fresh header.
func openNode(path string, node int) (*nodeLog, int64, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, 0, fmt.Errorf("wal: %w", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("wal: %w", err)
	}
	var torn int64
	keep := 0
	if len(data) < fileHeaderLen {
		// Empty or torn mid-header: start the file over.
		torn = int64(len(data))
	} else {
		hnode, err := parseHeader(data)
		if err != nil {
			f.Close()
			return nil, 0, fmt.Errorf("wal: %s: %w", path, err)
		}
		if hnode != node {
			f.Close()
			return nil, 0, fmt.Errorf("wal: %s: header names node %d", path, hnode)
		}
		_, valid, _ := scanPrefix(data[fileHeaderLen:])
		keep = fileHeaderLen + valid
		torn = int64(len(data) - keep)
	}
	if err := f.Truncate(int64(keep)); err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Seek(int64(keep), 0); err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("wal: %w", err)
	}
	nl := &nodeLog{f: f}
	if keep == 0 {
		nl.pending = appendHeader(nl.pending, node)
	}
	return nl, torn, nil
}

// Dir returns the directory the logs live in.
func (l *Log) Dir() string { return l.dir }

// NumNodes returns the number of per-node logs.
func (l *Log) NumNodes() int { return len(l.files) }

// Append buffers r against its node's log. The record is NOT durable
// until a subsequent Sync returns; callers enforcing write-ahead rules
// (begin durable before first grant, commit durable before reporting
// success) must call Sync at those points.
func (l *Log) Append(r Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: append on closed log")
	}
	if l.syncErr != nil {
		return l.syncErr
	}
	if r.Node < 0 || r.Node >= len(l.files) {
		return fmt.Errorf("wal: record for node %d, log has %d", r.Node, len(l.files))
	}
	nl := l.files[r.Node]
	buf, err := appendRecord(nl.pending, r)
	if err != nil {
		return err
	}
	nl.pending = buf
	nl.pendingRecs++
	l.appends++
	l.appendGen++
	return nil
}

// Sync makes every record appended before the call durable. Concurrent
// callers group-commit: while one caller's write+fsync pass is in
// flight, later callers wait and — if the pass covered their records —
// return without touching disk. It returns the number of records this
// call's own pass made durable (0 for piggybackers) so call sites can
// report group-commit batch sizes.
func (l *Log) Sync() (batched int, err error) {
	l.mu.Lock()
	target := l.appendGen
	for l.syncedGen < target && l.syncing && l.syncErr == nil && !l.closed {
		l.syncDone.Wait()
	}
	switch {
	case l.syncErr != nil:
		err = l.syncErr
		l.mu.Unlock()
		return 0, err
	case l.closed:
		l.mu.Unlock()
		return 0, errors.New("wal: sync on closed log")
	case l.syncedGen >= target:
		l.mu.Unlock() // piggybacked on another caller's pass
		return 0, nil
	}
	// Become the syncer: steal every pending buffer, release the lock,
	// do the IO, then publish the new durable generation.
	l.syncing = true
	type item struct {
		f    *os.File
		data []byte
	}
	var items []item
	for _, nl := range l.files {
		if len(nl.pending) > 0 {
			items = append(items, item{nl.f, nl.pending})
			batched += nl.pendingRecs
			nl.pending = nil
			nl.pendingRecs = 0
		}
	}
	target = l.appendGen // everything buffered up to here rides this pass
	hook := l.syncHook
	l.mu.Unlock()

	if hook != nil {
		hook()
	}
	for _, it := range items {
		if _, werr := it.f.Write(it.data); werr != nil {
			err = fmt.Errorf("wal: %w", werr)
			break
		}
		if serr := it.f.Sync(); serr != nil {
			err = fmt.Errorf("wal: %w", serr)
			break
		}
	}

	l.mu.Lock()
	l.syncing = false
	if err != nil {
		l.syncErr = err
	} else {
		if target > l.syncedGen {
			l.syncedGen = target
		}
		l.syncs++
		l.syncedRecs += uint64(batched)
		l.lastBatch = batched
		if batched > l.maxBatch {
			l.maxBatch = batched
		}
	}
	l.syncDone.Broadcast()
	l.mu.Unlock()
	return batched, err
}

// Crash simulates SIGKILL: for each node log, a frac-sized prefix of the
// pending (unsynced) bytes is written — as the page cache might have
// partially flushed — and the file is closed WITHOUT fsync. Everything
// else buffered is lost, typically leaving a torn frame at the tail.
// The log is unusable afterwards. frac is clamped to [0,1].
func (l *Log) Crash(frac float64) {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	for _, nl := range l.files {
		if n := int(frac * float64(len(nl.pending))); n > 0 {
			nl.f.Write(nl.pending[:n])
		}
		nl.pending = nil
		nl.f.Close()
	}
	l.syncDone.Broadcast()
}

// Close flushes and fsyncs every pending buffer, then closes the files.
func (l *Log) Close() error {
	if _, err := l.Sync(); err != nil {
		l.mu.Lock()
		l.closed = true
		l.closeFiles()
		l.mu.Unlock()
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	err := l.closeFiles()
	l.syncDone.Broadcast()
	return err
}

func (l *Log) closeFiles() error {
	var first error
	for _, nl := range l.files {
		if nl == nil || nl.f == nil {
			continue
		}
		if err := nl.f.Close(); err != nil && first == nil {
			first = err
		}
		nl.f = nil
	}
	return first
}

// Stats returns a snapshot of the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		Appends:        l.appends,
		Syncs:          l.syncs,
		SyncedRecords:  l.syncedRecs,
		MaxBatch:       l.maxBatch,
		TruncatedBytes: l.truncatedIn,
	}
}
