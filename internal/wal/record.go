// Package wal implements per-node dependency logging for durable
// recovery (ROADMAP: "Durable recovery via dependency logging").
//
// Instead of logging data values, each node's log records every
// transaction's *resolved WTPG predecessor set* — the wait-for edges the
// scheduler resolved against it (Yao et al., "Scaling Distributed
// Transaction Processing and Recovery based on Dependency Logging",
// PAPERS.md) — plus commit/abort completion records. Because locks are
// held to commit (strict 2PL on partitions), the logged precedence edges
// are the only ordering constraints a replay must respect, so recovery
// can replay transactions in parallel, wave by topological wave.
//
// On-disk format (little-endian throughout):
//
//	file   = header frame*
//	header = magic "BATWAL1\n" (8 bytes) | u32 node
//	frame  = u32 payloadLen | u32 crc32c(payload) | payload
//
//	payload = u8 kind            (1=begin, 2=commit, 3=abort)
//	        | i64 txn
//	        | u32 node
//	        | i64 at             (event.Time clocks)
//	        | u16 nsteps  { u32 part | u8 mode | f64 declared }*
//	        | u16 npreds  { i64 pred }*
//
// Every frame is independently checksummed (CRC-32C). A reader stops at
// the first frame that is torn (extends past end of file) or corrupt
// (checksum or structure mismatch) and keeps the longest valid prefix —
// the torn-tail truncation rule. A writer opening an existing log
// truncates the file to that prefix before appending.
//
// The write-ahead contract extends to the heap files of
// internal/storage: a transaction's dirty pages are flushed (written,
// never fsynced) only after its commit record's fsync returns, so any
// page state the heap loses or tears in a crash is always recoverable
// by replaying the committed records (Store.Redo).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"batsched/internal/event"
	"batsched/internal/txn"
)

// Kind is a log record type.
type Kind uint8

const (
	// Begin records a transaction's admission: its declared footprint and
	// the predecessor set resolved at admission. It is forced to disk
	// before the transaction's first grant takes effect.
	Begin Kind = 1
	// Commit records successful completion, carrying the final resolved
	// predecessor set (schedulers that resolve progressively, e.g. C2PL
	// and K-WTPG, may have added edges after admission).
	Commit Kind = 2
	// Abort records completion by abort; an aborted transaction imposes
	// no replay ordering.
	Abort Kind = 3
)

func (k Kind) String() string {
	switch k {
	case Begin:
		return "begin"
	case Commit:
		return "commit"
	case Abort:
		return "abort"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// StepRef is one footprint entry of a Begin record: the partition, the
// lock mode, and the declared I/O demand the schedulers saw.
type StepRef struct {
	Part     txn.PartitionID
	Mode     txn.Mode
	Declared float64
}

// Record is one log record. Node names the log the record belongs to;
// completion records are routed to the same node as their Begin so a
// single file scan pairs them without cross-node joins.
type Record struct {
	Kind  Kind
	Txn   txn.ID
	Node  int
	At    event.Time
	Steps []StepRef // Begin only: declared footprint
	Preds []txn.ID  // resolved WTPG predecessors (Begin: at admission; Commit: final)
}

// Footprint converts a transaction's declared steps into StepRefs.
func Footprint(t *txn.T) []StepRef {
	if len(t.Steps) == 0 {
		return nil
	}
	refs := make([]StepRef, len(t.Steps))
	for i, s := range t.Steps {
		d := s.Cost
		if i < len(t.Declared) {
			d = t.Declared[i]
		}
		refs[i] = StepRef{Part: s.Part, Mode: s.Mode, Declared: d}
	}
	return refs
}

var (
	// ErrTorn marks a frame that extends past the end of the buffer —
	// the write was cut mid-frame (a crash between write and fsync).
	ErrTorn = errors.New("wal: torn frame")
	// ErrCorrupt marks a frame whose checksum or structure is invalid.
	ErrCorrupt = errors.New("wal: corrupt frame")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const (
	frameHeaderLen = 8       // u32 len + u32 crc
	maxPayload     = 1 << 20 // sanity bound; a garbage length field reads as corruption
	maxList        = 1 << 16 // nsteps / npreds are u16
)

var fileMagic = [8]byte{'B', 'A', 'T', 'W', 'A', 'L', '1', '\n'}

const fileHeaderLen = 12 // magic + u32 node

func appendHeader(b []byte, node int) []byte {
	b = append(b, fileMagic[:]...)
	return binary.LittleEndian.AppendUint32(b, uint32(node))
}

func parseHeader(b []byte) (node int, err error) {
	if len(b) < fileHeaderLen {
		return 0, fmt.Errorf("%w: file header", ErrTorn)
	}
	if [8]byte(b[:8]) != fileMagic {
		return 0, fmt.Errorf("%w: bad magic %q", ErrCorrupt, b[:8])
	}
	return int(binary.LittleEndian.Uint32(b[8:12])), nil
}

// appendRecord appends r as one checksummed frame to b.
func appendRecord(b []byte, r Record) ([]byte, error) {
	if len(r.Steps) >= maxList || len(r.Preds) >= maxList {
		return b, fmt.Errorf("wal: record %v has %d steps / %d preds (max %d)",
			r.Txn, len(r.Steps), len(r.Preds), maxList-1)
	}
	start := len(b)
	b = append(b, 0, 0, 0, 0, 0, 0, 0, 0) // frame header placeholder
	p := len(b)
	b = append(b, byte(r.Kind))
	b = binary.LittleEndian.AppendUint64(b, uint64(r.Txn))
	b = binary.LittleEndian.AppendUint32(b, uint32(r.Node))
	b = binary.LittleEndian.AppendUint64(b, uint64(r.At))
	b = binary.LittleEndian.AppendUint16(b, uint16(len(r.Steps)))
	for _, s := range r.Steps {
		b = binary.LittleEndian.AppendUint32(b, uint32(s.Part))
		b = append(b, byte(s.Mode))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(s.Declared))
	}
	b = binary.LittleEndian.AppendUint16(b, uint16(len(r.Preds)))
	for _, id := range r.Preds {
		b = binary.LittleEndian.AppendUint64(b, uint64(id))
	}
	payload := b[p:]
	binary.LittleEndian.PutUint32(b[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[start+4:], crc32.Checksum(payload, castagnoli))
	return b, nil
}

// decodeRecord decodes the first frame of b. It returns the record and
// the number of bytes consumed, or ErrTorn (frame extends past b) /
// ErrCorrupt (checksum or structure mismatch).
func decodeRecord(b []byte) (Record, int, error) {
	if len(b) < frameHeaderLen {
		return Record{}, 0, ErrTorn
	}
	plen := int(binary.LittleEndian.Uint32(b))
	if plen > maxPayload {
		return Record{}, 0, fmt.Errorf("%w: payload length %d", ErrCorrupt, plen)
	}
	if len(b) < frameHeaderLen+plen {
		return Record{}, 0, ErrTorn
	}
	want := binary.LittleEndian.Uint32(b[4:])
	payload := b[frameHeaderLen : frameHeaderLen+plen]
	if crc32.Checksum(payload, castagnoli) != want {
		return Record{}, 0, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	r, err := parsePayload(payload)
	if err != nil {
		return Record{}, 0, err
	}
	return r, frameHeaderLen + plen, nil
}

func parsePayload(p []byte) (Record, error) {
	const fixed = 1 + 8 + 4 + 8 + 2 // kind..nsteps
	if len(p) < fixed {
		return Record{}, fmt.Errorf("%w: short payload (%d bytes)", ErrCorrupt, len(p))
	}
	var r Record
	r.Kind = Kind(p[0])
	if r.Kind != Begin && r.Kind != Commit && r.Kind != Abort {
		return Record{}, fmt.Errorf("%w: unknown kind %d", ErrCorrupt, p[0])
	}
	r.Txn = txn.ID(binary.LittleEndian.Uint64(p[1:]))
	r.Node = int(binary.LittleEndian.Uint32(p[9:]))
	r.At = event.Time(binary.LittleEndian.Uint64(p[13:]))
	nsteps := int(binary.LittleEndian.Uint16(p[21:]))
	off := fixed
	if nsteps > 0 {
		if len(p) < off+nsteps*13 {
			return Record{}, fmt.Errorf("%w: %d steps overflow payload", ErrCorrupt, nsteps)
		}
		r.Steps = make([]StepRef, nsteps)
		for i := range r.Steps {
			r.Steps[i] = StepRef{
				Part:     txn.PartitionID(binary.LittleEndian.Uint32(p[off:])),
				Mode:     txn.Mode(p[off+4]),
				Declared: math.Float64frombits(binary.LittleEndian.Uint64(p[off+5:])),
			}
			off += 13
		}
	}
	if len(p) < off+2 {
		return Record{}, fmt.Errorf("%w: missing pred count", ErrCorrupt)
	}
	npreds := int(binary.LittleEndian.Uint16(p[off:]))
	off += 2
	if npreds > 0 {
		if len(p) < off+npreds*8 {
			return Record{}, fmt.Errorf("%w: %d preds overflow payload", ErrCorrupt, npreds)
		}
		r.Preds = make([]txn.ID, npreds)
		for i := range r.Preds {
			r.Preds[i] = txn.ID(binary.LittleEndian.Uint64(p[off:]))
			off += 8
		}
	}
	if off != len(p) {
		return Record{}, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(p)-off)
	}
	return r, nil
}

// scanPrefix decodes frames from b until the first torn or corrupt one,
// returning the decoded records, the byte length of the valid prefix,
// and the error that stopped the scan (nil when b was fully consumed).
func scanPrefix(b []byte) (recs []Record, valid int, stop error) {
	for valid < len(b) {
		r, n, err := decodeRecord(b[valid:])
		if err != nil {
			return recs, valid, err
		}
		recs = append(recs, r)
		valid += n
	}
	return recs, valid, nil
}
