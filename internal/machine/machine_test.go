package machine

import (
	"testing"

	"batsched/internal/event"
	"batsched/internal/txn"
)

func TestDefaultConfigValid(t *testing.T) {
	c := DefaultConfig()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.NumNodes != 8 || c.ObjTime != 1000 {
		t.Errorf("unexpected defaults: %+v", c)
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{},
		{NumNodes: 8, NumParts: 0, ObjTime: 1000},
		{NumNodes: 8, NumParts: 16, ObjTime: 0},
		{NumNodes: 8, NumParts: 16, ObjTime: 1000, RetryDelay: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestNodeOf(t *testing.T) {
	c := DefaultConfig()
	for p := txn.PartitionID(0); p < 32; p++ {
		if got := c.NodeOf(p); got != int(p)%8 {
			t.Errorf("NodeOf(%v) = %d", p, got)
		}
	}
}

func TestControlNodeFIFOAndOccupancy(t *testing.T) {
	q := event.NewQueue()
	cn := NewControlNode(q)
	var order []int
	var times []event.Time
	mk := func(id int, cpu event.Time) Work {
		return func(now event.Time) (event.Time, func(event.Time)) {
			order = append(order, id)
			return cpu, func(done event.Time) { times = append(times, done) }
		}
	}
	q.At(0, func(event.Time) {
		cn.Submit(mk(1, 10))
		cn.Submit(mk(2, 5))
		cn.Submit(mk(3, 0))
	})
	q.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	// Completions at 10, 15, 15 (zero-cost work completes immediately
	// after pickup).
	if times[0] != 10 || times[1] != 15 || times[2] != 15 {
		t.Errorf("completion times = %v, want [10 15 15]", times)
	}
	if cn.BusyTime != 15 {
		t.Errorf("BusyTime = %v, want 15", cn.BusyTime)
	}
	if cn.Ops != 3 {
		t.Errorf("Ops = %d, want 3", cn.Ops)
	}
}

func TestControlNodeInterleavedSubmit(t *testing.T) {
	q := event.NewQueue()
	cn := NewControlNode(q)
	var finished []event.Time
	q.At(0, func(event.Time) {
		cn.Submit(func(event.Time) (event.Time, func(event.Time)) {
			return 100, func(now event.Time) { finished = append(finished, now) }
		})
	})
	// Submitted while CN is busy: must wait.
	q.At(50, func(event.Time) {
		cn.Submit(func(event.Time) (event.Time, func(event.Time)) {
			return 10, func(now event.Time) { finished = append(finished, now) }
		})
	})
	q.Run()
	if len(finished) != 2 || finished[0] != 100 || finished[1] != 110 {
		t.Errorf("finished = %v, want [100 110]", finished)
	}
}

func TestDataNodeRoundRobin(t *testing.T) {
	q := event.NewQueue()
	n := NewDataNode(0, q, 10)
	type done struct {
		id txn.ID
		at event.Time
	}
	var stepDone []done
	var quanta []event.Time
	n.OnQuantum = func(j *Job, objects float64, now event.Time) {
		quanta = append(quanta, now)
		if objects != 1 {
			t.Errorf("quantum = %g, want 1", objects)
		}
	}
	n.OnStepDone = func(j *Job, now event.Time) {
		stepDone = append(stepDone, done{j.Txn.ID, now})
	}
	t1 := txn.New(1, []txn.Step{{Mode: txn.Read, Part: 0, Cost: 3}})
	t2 := txn.New(2, []txn.Step{{Mode: txn.Read, Part: 0, Cost: 2}})
	q.At(0, func(event.Time) {
		n.Enqueue(&Job{Txn: t1, Step: 0, Remaining: 3})
		n.Enqueue(&Job{Txn: t2, Step: 0, Remaining: 2})
	})
	q.Run()
	// Round robin: T1@10, T2@20, T1@30, T2@40(done), T1@50(done).
	want := []event.Time{10, 20, 30, 40, 50}
	if len(quanta) != len(want) {
		t.Fatalf("quanta = %v", quanta)
	}
	for i := range want {
		if quanta[i] != want[i] {
			t.Fatalf("quanta = %v, want %v", quanta, want)
		}
	}
	if len(stepDone) != 2 || stepDone[0].id != 2 || stepDone[0].at != 40 ||
		stepDone[1].id != 1 || stepDone[1].at != 50 {
		t.Errorf("stepDone = %v", stepDone)
	}
	if n.BusyTime != 50 {
		t.Errorf("BusyTime = %v, want 50", n.BusyTime)
	}
	if n.Objects != 5 {
		t.Errorf("Objects = %g, want 5", n.Objects)
	}
}

func TestDataNodeFractionalTail(t *testing.T) {
	q := event.NewQueue()
	n := NewDataNode(0, q, 1000)
	var quanta []float64
	var doneAt event.Time
	n.OnQuantum = func(j *Job, objects float64, now event.Time) { quanta = append(quanta, objects) }
	n.OnStepDone = func(j *Job, now event.Time) { doneAt = now }
	t1 := txn.New(1, []txn.Step{{Mode: txn.Write, Part: 0, Cost: 1.2}})
	q.At(0, func(event.Time) { n.Enqueue(&Job{Txn: t1, Step: 0, Remaining: 1.2}) })
	q.Run()
	if len(quanta) != 2 || quanta[0] != 1 || quanta[1] < 0.19 || quanta[1] > 0.21 {
		t.Fatalf("quanta = %v, want [1 0.2]", quanta)
	}
	if doneAt != 1200 {
		t.Errorf("done at %v, want 1200", doneAt)
	}
}

func TestDataNodeZeroCostStep(t *testing.T) {
	q := event.NewQueue()
	n := NewDataNode(0, q, 1000)
	doneCount := 0
	n.OnStepDone = func(j *Job, now event.Time) { doneCount++ }
	t1 := txn.New(1, []txn.Step{{Mode: txn.Read, Part: 0, Cost: 0}})
	q.At(0, func(event.Time) { n.Enqueue(&Job{Txn: t1, Step: 0, Remaining: 0}) })
	q.Run()
	if doneCount != 1 {
		t.Errorf("zero-cost step completed %d times, want 1", doneCount)
	}
	if n.BusyTime != 0 {
		t.Errorf("BusyTime = %v, want 0", n.BusyTime)
	}
}

func TestDataNodeQueueLen(t *testing.T) {
	q := event.NewQueue()
	n := NewDataNode(0, q, 10)
	t1 := txn.New(1, []txn.Step{{Mode: txn.Read, Part: 0, Cost: 2}})
	t2 := txn.New(2, []txn.Step{{Mode: txn.Read, Part: 0, Cost: 1}})
	q.At(0, func(event.Time) {
		n.Enqueue(&Job{Txn: t1, Step: 0, Remaining: 2})
		n.Enqueue(&Job{Txn: t2, Step: 0, Remaining: 1})
		if n.QueueLen() != 2 {
			t.Errorf("QueueLen = %d, want 2", n.QueueLen())
		}
	})
	q.Run()
	if n.QueueLen() != 0 {
		t.Errorf("QueueLen after drain = %d, want 0", n.QueueLen())
	}
}

func TestPlacementStartsAtStaticPolicy(t *testing.T) {
	c := DefaultConfig()
	p := NewPlacement(c)
	for part := txn.PartitionID(0); part < txn.PartitionID(c.NumParts); part++ {
		if got, want := p.NodeOf(part), c.NodeOf(part); got != want {
			t.Errorf("NodeOf(%v) = %d, want static %d", part, got, want)
		}
	}
	// Out-of-table partitions follow the same policy on demand.
	if got, want := p.NodeOf(100), c.NodeOf(100); got != want {
		t.Errorf("NodeOf(100) = %d, want %d", got, want)
	}
	if p.AliveCount() != c.NumNodes {
		t.Errorf("AliveCount = %d, want %d", p.AliveCount(), c.NumNodes)
	}
}

func TestPlacementKillRehomesByModAlive(t *testing.T) {
	c := DefaultConfig() // 8 nodes, 16 partitions
	p := NewPlacement(c)
	remap := p.Kill(3)
	// Node 3 homed partitions 3 and 11; survivors are 0,1,2,4,5,6,7.
	alive := []int{0, 1, 2, 4, 5, 6, 7}
	want := map[txn.PartitionID]int{
		3:  alive[3%7],
		11: alive[11%7],
	}
	if len(remap) != len(want) {
		t.Fatalf("remap = %+v, want %d entries", remap, len(want))
	}
	for _, rh := range remap {
		if rh.From != 3 {
			t.Errorf("remap %+v: From != 3", rh)
		}
		if to, ok := want[rh.Part]; !ok || rh.To != to {
			t.Errorf("remap %+v, want To = %d", rh, want[rh.Part])
		}
		if p.NodeOf(rh.Part) != rh.To {
			t.Errorf("NodeOf(%v) = %d after kill, want %d", rh.Part, p.NodeOf(rh.Part), rh.To)
		}
	}
	if p.Alive(3) {
		t.Error("killed node still alive")
	}
	if p.AliveCount() != 7 {
		t.Errorf("AliveCount = %d, want 7", p.AliveCount())
	}
	// Untouched partitions keep their homes.
	for part := txn.PartitionID(0); part < 16; part++ {
		if _, moved := want[part]; moved {
			continue
		}
		if got := p.NodeOf(part); got != c.NodeOf(part) {
			t.Errorf("NodeOf(%v) = %d moved without its node dying", part, got)
		}
	}
}

func TestPlacementComposesUnderSuccessiveKills(t *testing.T) {
	c := Config{NumNodes: 3, NumParts: 6, ObjTime: 1}
	p := NewPlacement(c)
	p.Kill(0) // survivors 1,2: partitions 0,3 re-home
	p.Kill(2) // survivor 1: everything ends up on node 1
	for part := txn.PartitionID(0); part < 6; part++ {
		if got := p.NodeOf(part); got != 1 {
			t.Errorf("NodeOf(%v) = %d, want sole survivor 1", part, got)
		}
	}
	if p.AliveCount() != 1 {
		t.Fatalf("AliveCount = %d, want 1", p.AliveCount())
	}
	// Killing the last survivor is a caller bug.
	defer func() {
		if recover() == nil {
			t.Error("kill of the last alive node did not panic")
		}
	}()
	p.Kill(1)
}

func TestPlacementKillDeadNodePanics(t *testing.T) {
	p := NewPlacement(Config{NumNodes: 3, NumParts: 3, ObjTime: 1})
	p.Kill(1)
	defer func() {
		if recover() == nil {
			t.Error("double kill did not panic")
		}
	}()
	p.Kill(1)
}

func TestDataNodeKillReturnsResidentsAndFreezes(t *testing.T) {
	q := event.NewQueue()
	n := NewDataNode(0, q, 10)
	var reported []txn.ID
	n.OnQuantum = func(j *Job, objects float64, now event.Time) { reported = append(reported, j.Txn.ID) }
	n.OnStepDone = func(j *Job, now event.Time) { t.Errorf("step of %v completed on a killed node", j.Txn.ID) }
	t1 := txn.New(1, []txn.Step{{Mode: txn.Write, Part: 0, Cost: 3}})
	t2 := txn.New(2, []txn.Step{{Mode: txn.Write, Part: 0, Cost: 2}})
	j1 := &Job{Txn: t1, Step: 0, Remaining: 3}
	j2 := &Job{Txn: t2, Step: 0, Remaining: 2}
	var resident []*Job
	q.At(0, func(event.Time) {
		n.Enqueue(j1)
		n.Enqueue(j2)
	})
	// Kill at t=15: round-robin put j1 back after its first object, so
	// j2's first quantum (issued at 10, due 20) is in flight and j1 waits
	// with one object done.
	q.At(15, func(event.Time) { resident = append(resident, n.Kill()...) })
	q.Run()
	if !n.Dead() {
		t.Fatal("node not dead after Kill")
	}
	if len(resident) != 2 || resident[0] != j2 || resident[1] != j1 {
		t.Fatalf("resident = %v, want [j2 j1] (in-flight first)", resident)
	}
	// Quanta reported before the crash only: j1@10. The in-flight quantum
	// (j2, issued at 10, due 20) dies with the node.
	if len(reported) != 1 || reported[0] != 1 {
		t.Fatalf("reported quanta = %v, want [1]", reported)
	}
	// The lost in-flight quantum left the jobs exactly as issued:
	// requeueing elsewhere redoes only that quantum.
	if j1.Processed != 1 || j1.Remaining != 2 {
		t.Errorf("j1 Processed=%g Remaining=%g, want 1 and 2", j1.Processed, j1.Remaining)
	}
	if j2.Processed != 0 || j2.Remaining != 2 {
		t.Errorf("j2 Processed=%g Remaining=%g, want 0 and 2", j2.Processed, j2.Remaining)
	}
	if n.BusyTime != 10 {
		t.Errorf("BusyTime = %v, want 10 (one completed quantum)", n.BusyTime)
	}
	// A second Kill is a no-op; enqueueing on the corpse panics.
	if extra := n.Kill(); extra != nil {
		t.Errorf("second Kill returned %v", extra)
	}
	defer func() {
		if recover() == nil {
			t.Error("enqueue on a dead node did not panic")
		}
	}()
	n.Enqueue(&Job{Txn: t1, Step: 0, Remaining: 1})
}
