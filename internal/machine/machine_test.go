package machine

import (
	"testing"

	"batsched/internal/event"
	"batsched/internal/txn"
)

func TestDefaultConfigValid(t *testing.T) {
	c := DefaultConfig()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.NumNodes != 8 || c.ObjTime != 1000 {
		t.Errorf("unexpected defaults: %+v", c)
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{},
		{NumNodes: 8, NumParts: 0, ObjTime: 1000},
		{NumNodes: 8, NumParts: 16, ObjTime: 0},
		{NumNodes: 8, NumParts: 16, ObjTime: 1000, RetryDelay: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestNodeOf(t *testing.T) {
	c := DefaultConfig()
	for p := txn.PartitionID(0); p < 32; p++ {
		if got := c.NodeOf(p); got != int(p)%8 {
			t.Errorf("NodeOf(%v) = %d", p, got)
		}
	}
}

func TestControlNodeFIFOAndOccupancy(t *testing.T) {
	q := event.NewQueue()
	cn := NewControlNode(q)
	var order []int
	var times []event.Time
	mk := func(id int, cpu event.Time) Work {
		return func(now event.Time) (event.Time, func(event.Time)) {
			order = append(order, id)
			return cpu, func(done event.Time) { times = append(times, done) }
		}
	}
	q.At(0, func(event.Time) {
		cn.Submit(mk(1, 10))
		cn.Submit(mk(2, 5))
		cn.Submit(mk(3, 0))
	})
	q.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	// Completions at 10, 15, 15 (zero-cost work completes immediately
	// after pickup).
	if times[0] != 10 || times[1] != 15 || times[2] != 15 {
		t.Errorf("completion times = %v, want [10 15 15]", times)
	}
	if cn.BusyTime != 15 {
		t.Errorf("BusyTime = %v, want 15", cn.BusyTime)
	}
	if cn.Ops != 3 {
		t.Errorf("Ops = %d, want 3", cn.Ops)
	}
}

func TestControlNodeInterleavedSubmit(t *testing.T) {
	q := event.NewQueue()
	cn := NewControlNode(q)
	var finished []event.Time
	q.At(0, func(event.Time) {
		cn.Submit(func(event.Time) (event.Time, func(event.Time)) {
			return 100, func(now event.Time) { finished = append(finished, now) }
		})
	})
	// Submitted while CN is busy: must wait.
	q.At(50, func(event.Time) {
		cn.Submit(func(event.Time) (event.Time, func(event.Time)) {
			return 10, func(now event.Time) { finished = append(finished, now) }
		})
	})
	q.Run()
	if len(finished) != 2 || finished[0] != 100 || finished[1] != 110 {
		t.Errorf("finished = %v, want [100 110]", finished)
	}
}

func TestDataNodeRoundRobin(t *testing.T) {
	q := event.NewQueue()
	n := NewDataNode(0, q, 10)
	type done struct {
		id txn.ID
		at event.Time
	}
	var stepDone []done
	var quanta []event.Time
	n.OnQuantum = func(j *Job, objects float64, now event.Time) {
		quanta = append(quanta, now)
		if objects != 1 {
			t.Errorf("quantum = %g, want 1", objects)
		}
	}
	n.OnStepDone = func(j *Job, now event.Time) {
		stepDone = append(stepDone, done{j.Txn.ID, now})
	}
	t1 := txn.New(1, []txn.Step{{Mode: txn.Read, Part: 0, Cost: 3}})
	t2 := txn.New(2, []txn.Step{{Mode: txn.Read, Part: 0, Cost: 2}})
	q.At(0, func(event.Time) {
		n.Enqueue(&Job{Txn: t1, Step: 0, Remaining: 3})
		n.Enqueue(&Job{Txn: t2, Step: 0, Remaining: 2})
	})
	q.Run()
	// Round robin: T1@10, T2@20, T1@30, T2@40(done), T1@50(done).
	want := []event.Time{10, 20, 30, 40, 50}
	if len(quanta) != len(want) {
		t.Fatalf("quanta = %v", quanta)
	}
	for i := range want {
		if quanta[i] != want[i] {
			t.Fatalf("quanta = %v, want %v", quanta, want)
		}
	}
	if len(stepDone) != 2 || stepDone[0].id != 2 || stepDone[0].at != 40 ||
		stepDone[1].id != 1 || stepDone[1].at != 50 {
		t.Errorf("stepDone = %v", stepDone)
	}
	if n.BusyTime != 50 {
		t.Errorf("BusyTime = %v, want 50", n.BusyTime)
	}
	if n.Objects != 5 {
		t.Errorf("Objects = %g, want 5", n.Objects)
	}
}

func TestDataNodeFractionalTail(t *testing.T) {
	q := event.NewQueue()
	n := NewDataNode(0, q, 1000)
	var quanta []float64
	var doneAt event.Time
	n.OnQuantum = func(j *Job, objects float64, now event.Time) { quanta = append(quanta, objects) }
	n.OnStepDone = func(j *Job, now event.Time) { doneAt = now }
	t1 := txn.New(1, []txn.Step{{Mode: txn.Write, Part: 0, Cost: 1.2}})
	q.At(0, func(event.Time) { n.Enqueue(&Job{Txn: t1, Step: 0, Remaining: 1.2}) })
	q.Run()
	if len(quanta) != 2 || quanta[0] != 1 || quanta[1] < 0.19 || quanta[1] > 0.21 {
		t.Fatalf("quanta = %v, want [1 0.2]", quanta)
	}
	if doneAt != 1200 {
		t.Errorf("done at %v, want 1200", doneAt)
	}
}

func TestDataNodeZeroCostStep(t *testing.T) {
	q := event.NewQueue()
	n := NewDataNode(0, q, 1000)
	doneCount := 0
	n.OnStepDone = func(j *Job, now event.Time) { doneCount++ }
	t1 := txn.New(1, []txn.Step{{Mode: txn.Read, Part: 0, Cost: 0}})
	q.At(0, func(event.Time) { n.Enqueue(&Job{Txn: t1, Step: 0, Remaining: 0}) })
	q.Run()
	if doneCount != 1 {
		t.Errorf("zero-cost step completed %d times, want 1", doneCount)
	}
	if n.BusyTime != 0 {
		t.Errorf("BusyTime = %v, want 0", n.BusyTime)
	}
}

func TestDataNodeQueueLen(t *testing.T) {
	q := event.NewQueue()
	n := NewDataNode(0, q, 10)
	t1 := txn.New(1, []txn.Step{{Mode: txn.Read, Part: 0, Cost: 2}})
	t2 := txn.New(2, []txn.Step{{Mode: txn.Read, Part: 0, Cost: 1}})
	q.At(0, func(event.Time) {
		n.Enqueue(&Job{Txn: t1, Step: 0, Remaining: 2})
		n.Enqueue(&Job{Txn: t2, Step: 0, Remaining: 1})
		if n.QueueLen() != 2 {
			t.Errorf("QueueLen = %d, want 2", n.QueueLen())
		}
	})
	q.Run()
	if n.QueueLen() != 0 {
		t.Errorf("QueueLen after drain = %d, want 0", n.QueueLen())
	}
}
