// Package machine models the paper's shared-nothing database machine
// (§4.1, Figure 5): one centralized control node (CN) that runs the
// concurrency control and coordinates two-phase commitment, and NumNodes
// data-processing nodes (DN) that execute bulk operations.
//
// Partitions are placed by node = partition mod NumNodes. A DN executes
// its resident transactions round-robin with a one-object quantum: after
// each object (ObjTime) the running transaction is parked and the next
// waiting one resumes; the finished object is reported to the CN so the
// WTPG weight w(T0→Ti) can be decremented. The CN is a single FIFO
// server: concurrency-control decisions and commit/startup coordination
// occupy it for their CPU demand, one at a time.
package machine

import (
	"fmt"
	"math"

	"batsched/internal/core/sched"
	"batsched/internal/event"
	"batsched/internal/txn"
)

// Config carries the Table 1 machine parameters. Values the paper prints
// only in an unreadable figure are set to plausible defaults and
// documented in DESIGN.md §4.
type Config struct {
	// NumNodes is the number of data-processing nodes (paper: 8).
	NumNodes int
	// NumParts is the number of partitions (16 in Experiments 1 and 4).
	NumParts int
	// ObjTime is the bulk-processing time of one object at a DN
	// (paper: 1 second, ≈60 tracks ≈ 2.5 MB per disk in FDS-R).
	ObjTime event.Time
	// StartupTime is the CN coordination cost of starting a transaction.
	StartupTime event.Time
	// CommitTime is the CN coordination cost of two-phase commitment.
	CommitTime event.Time
	// RetryDelay is the fixed delay after which delayed lock-requests and
	// aborted transactions are resubmitted (§3.2).
	RetryDelay event.Time
	// Control carries the concurrency-control CPU costs (ddtime,
	// chaintime, kwtpgtime) and the §3.4 control-saving period.
	Control sched.Costs
}

// DefaultConfig returns the Table 1 defaults (see DESIGN.md §4 for which
// values are verbatim and which are assumptions).
func DefaultConfig() Config {
	return Config{
		NumNodes:    8,
		NumParts:    16,
		ObjTime:     1000,
		StartupTime: 10,
		CommitTime:  10,
		RetryDelay:  500,
		Control: sched.Costs{
			DDTime:    1,
			ChainTime: 5,
			KWTPGTime: 3,
			KeepTime:  5000,
		},
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.NumNodes <= 0 {
		return fmt.Errorf("machine: NumNodes = %d", c.NumNodes)
	}
	if c.NumParts <= 0 {
		return fmt.Errorf("machine: NumParts = %d", c.NumParts)
	}
	if c.ObjTime <= 0 {
		return fmt.Errorf("machine: ObjTime = %v", c.ObjTime)
	}
	if c.StartupTime < 0 || c.CommitTime < 0 || c.RetryDelay < 0 {
		return fmt.Errorf("machine: negative coordination times")
	}
	return nil
}

// NodeOf places a partition: node ID = partition ID modulo NumNodes
// (§4.1), the placement that range-partitions every relation across all
// nodes.
func (c Config) NodeOf(p txn.PartitionID) int {
	n := int(p) % c.NumNodes
	if n < 0 {
		n += c.NumNodes
	}
	return n
}

// Rehome records one entry of the remap table produced by a node crash:
// partition Part moved from node From to node To.
type Rehome struct {
	Part     txn.PartitionID
	From, To int
}

// Placement is the mutable partition-to-node map: it starts at the
// paper's static placement (node = partition mod NumNodes) and re-homes
// partitions when nodes die. The re-homing policy is a rebase of the
// paper's rule onto the survivors: a partition whose home is dead moves
// to aliveNodes[partition mod len(aliveNodes)], with aliveNodes the
// ascending list of surviving node IDs. The policy is deterministic,
// spreads a dead node's partitions across all survivors, and composes
// under successive crashes (each crash re-homes against the then-alive
// set). See docs/ROBUSTNESS.md §8.
type Placement struct {
	numNodes int
	alive    []bool
	aliveIDs []int
	// home caches the current node of partitions [0, NumParts); higher
	// partition IDs are computed on demand against the same policy.
	home []int
}

// NewPlacement builds the static placement for cfg (all nodes alive).
func NewPlacement(cfg Config) *Placement {
	p := &Placement{
		numNodes: cfg.NumNodes,
		alive:    make([]bool, cfg.NumNodes),
		aliveIDs: make([]int, cfg.NumNodes),
		home:     make([]int, cfg.NumParts),
	}
	for n := range p.alive {
		p.alive[n] = true
		p.aliveIDs[n] = n
	}
	for part := range p.home {
		p.home[part] = cfg.NodeOf(txn.PartitionID(part))
	}
	return p
}

// NodeOf returns the current home of a partition.
func (p *Placement) NodeOf(part txn.PartitionID) int {
	if i := int(part); i >= 0 && i < len(p.home) {
		return p.home[i]
	}
	// Out-of-table partition: apply the same policy on demand.
	base := int(part) % p.numNodes
	if base < 0 {
		base += p.numNodes
	}
	if p.alive[base] {
		return base
	}
	idx := int(part) % len(p.aliveIDs)
	if idx < 0 {
		idx += len(p.aliveIDs)
	}
	return p.aliveIDs[idx]
}

// Alive reports whether a node is still up.
func (p *Placement) Alive(node int) bool {
	return node >= 0 && node < len(p.alive) && p.alive[node]
}

// AliveCount returns the number of surviving nodes.
func (p *Placement) AliveCount() int { return len(p.aliveIDs) }

// AliveIDs returns the ascending IDs of the surviving nodes. The slice
// is the placement's own; callers must not mutate it.
func (p *Placement) AliveIDs() []int { return p.aliveIDs }

// Kill marks a node dead and re-homes every partition currently homed
// there, returning the remap table (in ascending partition order). It
// panics when asked to kill an already-dead node or the last survivor —
// both are caller bugs: with no data nodes left there is nothing to
// re-home onto.
func (p *Placement) Kill(node int) []Rehome {
	if !p.Alive(node) {
		panic(fmt.Sprintf("machine: kill of dead or unknown node %d", node))
	}
	if len(p.aliveIDs) == 1 {
		panic("machine: kill of the last alive node")
	}
	p.alive[node] = false
	ids := p.aliveIDs[:0]
	for n, up := range p.alive {
		if up {
			ids = append(ids, n)
		}
	}
	p.aliveIDs = ids
	var remap []Rehome
	for part, h := range p.home {
		if h != node {
			continue
		}
		to := p.aliveIDs[part%len(p.aliveIDs)]
		p.home[part] = to
		remap = append(remap, Rehome{Part: txn.PartitionID(part), From: node, To: to})
	}
	return remap
}

// ControlNode is the centralized CN: a FIFO single server for control
// work (admission, lock decisions, commit coordination).
type ControlNode struct {
	q        *event.Queue
	pending  []Work
	busy     bool
	BusyTime event.Time
	Ops      uint64
}

// Work is one unit of control processing. It is invoked when the CN
// reaches it; it must return the CPU duration it consumes and an optional
// completion callback that fires once that CPU time has elapsed.
type Work func(now event.Time) (cpu event.Time, done func(now event.Time))

// NewControlNode returns a CN bound to the event queue.
func NewControlNode(q *event.Queue) *ControlNode {
	return &ControlNode{q: q}
}

// Submit enqueues control work; it runs when the CN becomes free.
func (cn *ControlNode) Submit(w Work) {
	if w == nil {
		panic("machine: nil control work")
	}
	cn.pending = append(cn.pending, w)
	cn.pump()
}

// QueueLen returns the number of control requests waiting (not running).
func (cn *ControlNode) QueueLen() int { return len(cn.pending) }

func (cn *ControlNode) pump() {
	if cn.busy || len(cn.pending) == 0 {
		return
	}
	w := cn.pending[0]
	cn.pending = cn.pending[1:]
	cn.busy = true
	cpu, done := w(cn.q.Now())
	if cpu < 0 {
		cpu = 0
	}
	cn.BusyTime += cpu
	cn.Ops++
	cn.q.After(cpu, func(now event.Time) {
		cn.busy = false
		if done != nil {
			done(now)
		}
		cn.pump()
	})
}

// Job is one step of a transaction resident at a DN: the remaining I/O
// demand of the step in objects.
type Job struct {
	Txn       *txn.T
	Step      int
	Remaining float64
	// Cancelled marks a job whose transaction was aborted: the DN drops
	// it at the next scheduling point without reporting OnQuantum or
	// OnStepDone. An in-flight quantum still completes (the I/O is
	// already issued) but is not reported.
	Cancelled bool
	// TimeFactor scales the per-object processing time of this job
	// (slow-I/O fault injection). Zero means 1 so the zero value stays
	// byte-identical to the unfaulted machine.
	TimeFactor float64
	// Processed accumulates the objects this job has completed at its
	// node. Node-crash recovery reads it: a resident job with Processed
	// > 0 left partial bulk results on the dead node and cannot simply
	// be requeued (docs/ROBUSTNESS.md §8).
	Processed float64
}

// DataNode is one DN: a round-robin processor of bulk jobs with a
// one-object quantum.
type DataNode struct {
	ID   int
	q    *event.Queue
	jobs []*Job
	busy bool
	cur  *Job // the job whose quantum is in flight (busy only)
	dead bool

	objTime event.Time
	// BusyTime accumulates processing time for utilization metrics.
	BusyTime event.Time
	// Objects counts processed objects (fractional quanta included).
	Objects float64

	// OnQuantum fires after each processed quantum (the §3.1 weight
	// message to the CN). OnStepDone fires when a job's step completes.
	OnQuantum  func(j *Job, objects float64, now event.Time)
	OnStepDone func(j *Job, now event.Time)
}

// NewDataNode returns a DN bound to the event queue.
func NewDataNode(id int, q *event.Queue, objTime event.Time) *DataNode {
	if objTime <= 0 {
		panic(fmt.Sprintf("machine: ObjTime %v", objTime))
	}
	return &DataNode{ID: id, q: q, objTime: objTime}
}

// QueueLen returns the number of jobs waiting or running at the DN.
func (n *DataNode) QueueLen() int {
	l := len(n.jobs)
	if n.busy {
		l++
	}
	return l
}

// Enqueue adds a job to the round-robin ring.
func (n *DataNode) Enqueue(j *Job) {
	if j == nil || j.Txn == nil {
		panic("machine: bad job")
	}
	if n.dead {
		panic(fmt.Sprintf("machine: enqueue on dead node %d", n.ID))
	}
	n.jobs = append(n.jobs, j)
	n.pump()
}

// Dead reports whether the node has been killed.
func (n *DataNode) Dead() bool { return n.dead }

// Kill crashes the node: it stops processing forever and its resident
// jobs — the one whose quantum is in flight plus the round-robin queue
// — are returned to the caller to requeue or abort. An in-flight
// quantum's I/O is lost with the node: it is never reported and the
// job's Remaining/Processed are left exactly as they were when the
// quantum was issued, so requeueing the job elsewhere redoes only that
// quantum. Killing an already-dead node returns nil.
func (n *DataNode) Kill() []*Job {
	if n.dead {
		return nil
	}
	n.dead = true
	var resident []*Job
	if n.busy && n.cur != nil {
		resident = append(resident, n.cur)
	}
	resident = append(resident, n.jobs...)
	n.cur = nil
	n.jobs = nil
	return resident
}

const remainingEps = 1e-9

func (n *DataNode) pump() {
	for !n.busy && !n.dead && len(n.jobs) > 0 {
		j := n.jobs[0]
		n.jobs = n.jobs[1:]
		if j.Cancelled {
			// Aborted transaction: the job evaporates without callbacks.
			continue
		}
		if j.Remaining <= remainingEps {
			// Zero-demand step (e.g. a fully filtered selection):
			// completes without occupying the node.
			if n.OnStepDone != nil {
				n.OnStepDone(j, n.q.Now())
			}
			continue
		}
		quantum := math.Min(1, j.Remaining)
		factor := j.TimeFactor
		if factor <= 0 {
			factor = 1
		}
		dur := event.Time(math.Round(quantum * float64(n.objTime) * factor))
		if dur < 1 {
			dur = 1
		}
		n.busy = true
		n.cur = j
		n.q.After(dur, func(now event.Time) {
			n.busy = false
			if n.dead {
				// The node died while the quantum's I/O was in flight: the
				// result is lost, nothing is reported or accounted, and the
				// job (already handed to Kill's caller) is left untouched.
				return
			}
			n.cur = nil
			n.BusyTime += dur
			n.Objects += quantum
			j.Remaining -= quantum
			j.Processed += quantum
			if j.Remaining <= remainingEps {
				j.Remaining = 0
			}
			// OnQuantum may cancel the job (the simulator's injected-abort
			// path), so the cancellation check runs both before and after.
			if n.OnQuantum != nil && !j.Cancelled {
				n.OnQuantum(j, quantum, now)
			}
			switch {
			case j.Cancelled:
				// Dropped: no completion callback, no requeue.
			case j.Remaining == 0:
				if n.OnStepDone != nil {
					n.OnStepDone(j, now)
				}
			default:
				n.jobs = append(n.jobs, j)
			}
			n.pump()
		})
	}
}
