// Package machine models the paper's shared-nothing database machine
// (§4.1, Figure 5): one centralized control node (CN) that runs the
// concurrency control and coordinates two-phase commitment, and NumNodes
// data-processing nodes (DN) that execute bulk operations.
//
// Partitions are placed by node = partition mod NumNodes. A DN executes
// its resident transactions round-robin with a one-object quantum: after
// each object (ObjTime) the running transaction is parked and the next
// waiting one resumes; the finished object is reported to the CN so the
// WTPG weight w(T0→Ti) can be decremented. The CN is a single FIFO
// server: concurrency-control decisions and commit/startup coordination
// occupy it for their CPU demand, one at a time.
package machine

import (
	"fmt"
	"math"

	"batsched/internal/core/sched"
	"batsched/internal/event"
	"batsched/internal/txn"
)

// Config carries the Table 1 machine parameters. Values the paper prints
// only in an unreadable figure are set to plausible defaults and
// documented in DESIGN.md §4.
type Config struct {
	// NumNodes is the number of data-processing nodes (paper: 8).
	NumNodes int
	// NumParts is the number of partitions (16 in Experiments 1 and 4).
	NumParts int
	// ObjTime is the bulk-processing time of one object at a DN
	// (paper: 1 second, ≈60 tracks ≈ 2.5 MB per disk in FDS-R).
	ObjTime event.Time
	// StartupTime is the CN coordination cost of starting a transaction.
	StartupTime event.Time
	// CommitTime is the CN coordination cost of two-phase commitment.
	CommitTime event.Time
	// RetryDelay is the fixed delay after which delayed lock-requests and
	// aborted transactions are resubmitted (§3.2).
	RetryDelay event.Time
	// Control carries the concurrency-control CPU costs (ddtime,
	// chaintime, kwtpgtime) and the §3.4 control-saving period.
	Control sched.Costs
}

// DefaultConfig returns the Table 1 defaults (see DESIGN.md §4 for which
// values are verbatim and which are assumptions).
func DefaultConfig() Config {
	return Config{
		NumNodes:    8,
		NumParts:    16,
		ObjTime:     1000,
		StartupTime: 10,
		CommitTime:  10,
		RetryDelay:  500,
		Control: sched.Costs{
			DDTime:    1,
			ChainTime: 5,
			KWTPGTime: 3,
			KeepTime:  5000,
		},
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.NumNodes <= 0 {
		return fmt.Errorf("machine: NumNodes = %d", c.NumNodes)
	}
	if c.NumParts <= 0 {
		return fmt.Errorf("machine: NumParts = %d", c.NumParts)
	}
	if c.ObjTime <= 0 {
		return fmt.Errorf("machine: ObjTime = %v", c.ObjTime)
	}
	if c.StartupTime < 0 || c.CommitTime < 0 || c.RetryDelay < 0 {
		return fmt.Errorf("machine: negative coordination times")
	}
	return nil
}

// NodeOf places a partition: node ID = partition ID modulo NumNodes
// (§4.1), the placement that range-partitions every relation across all
// nodes.
func (c Config) NodeOf(p txn.PartitionID) int {
	n := int(p) % c.NumNodes
	if n < 0 {
		n += c.NumNodes
	}
	return n
}

// ControlNode is the centralized CN: a FIFO single server for control
// work (admission, lock decisions, commit coordination).
type ControlNode struct {
	q        *event.Queue
	pending  []Work
	busy     bool
	BusyTime event.Time
	Ops      uint64
}

// Work is one unit of control processing. It is invoked when the CN
// reaches it; it must return the CPU duration it consumes and an optional
// completion callback that fires once that CPU time has elapsed.
type Work func(now event.Time) (cpu event.Time, done func(now event.Time))

// NewControlNode returns a CN bound to the event queue.
func NewControlNode(q *event.Queue) *ControlNode {
	return &ControlNode{q: q}
}

// Submit enqueues control work; it runs when the CN becomes free.
func (cn *ControlNode) Submit(w Work) {
	if w == nil {
		panic("machine: nil control work")
	}
	cn.pending = append(cn.pending, w)
	cn.pump()
}

// QueueLen returns the number of control requests waiting (not running).
func (cn *ControlNode) QueueLen() int { return len(cn.pending) }

func (cn *ControlNode) pump() {
	if cn.busy || len(cn.pending) == 0 {
		return
	}
	w := cn.pending[0]
	cn.pending = cn.pending[1:]
	cn.busy = true
	cpu, done := w(cn.q.Now())
	if cpu < 0 {
		cpu = 0
	}
	cn.BusyTime += cpu
	cn.Ops++
	cn.q.After(cpu, func(now event.Time) {
		cn.busy = false
		if done != nil {
			done(now)
		}
		cn.pump()
	})
}

// Job is one step of a transaction resident at a DN: the remaining I/O
// demand of the step in objects.
type Job struct {
	Txn       *txn.T
	Step      int
	Remaining float64
	// Cancelled marks a job whose transaction was aborted: the DN drops
	// it at the next scheduling point without reporting OnQuantum or
	// OnStepDone. An in-flight quantum still completes (the I/O is
	// already issued) but is not reported.
	Cancelled bool
	// TimeFactor scales the per-object processing time of this job
	// (slow-I/O fault injection). Zero means 1 so the zero value stays
	// byte-identical to the unfaulted machine.
	TimeFactor float64
}

// DataNode is one DN: a round-robin processor of bulk jobs with a
// one-object quantum.
type DataNode struct {
	ID   int
	q    *event.Queue
	jobs []*Job
	busy bool

	objTime event.Time
	// BusyTime accumulates processing time for utilization metrics.
	BusyTime event.Time
	// Objects counts processed objects (fractional quanta included).
	Objects float64

	// OnQuantum fires after each processed quantum (the §3.1 weight
	// message to the CN). OnStepDone fires when a job's step completes.
	OnQuantum  func(j *Job, objects float64, now event.Time)
	OnStepDone func(j *Job, now event.Time)
}

// NewDataNode returns a DN bound to the event queue.
func NewDataNode(id int, q *event.Queue, objTime event.Time) *DataNode {
	if objTime <= 0 {
		panic(fmt.Sprintf("machine: ObjTime %v", objTime))
	}
	return &DataNode{ID: id, q: q, objTime: objTime}
}

// QueueLen returns the number of jobs waiting or running at the DN.
func (n *DataNode) QueueLen() int {
	l := len(n.jobs)
	if n.busy {
		l++
	}
	return l
}

// Enqueue adds a job to the round-robin ring.
func (n *DataNode) Enqueue(j *Job) {
	if j == nil || j.Txn == nil {
		panic("machine: bad job")
	}
	n.jobs = append(n.jobs, j)
	n.pump()
}

const remainingEps = 1e-9

func (n *DataNode) pump() {
	for !n.busy && len(n.jobs) > 0 {
		j := n.jobs[0]
		n.jobs = n.jobs[1:]
		if j.Cancelled {
			// Aborted transaction: the job evaporates without callbacks.
			continue
		}
		if j.Remaining <= remainingEps {
			// Zero-demand step (e.g. a fully filtered selection):
			// completes without occupying the node.
			if n.OnStepDone != nil {
				n.OnStepDone(j, n.q.Now())
			}
			continue
		}
		quantum := math.Min(1, j.Remaining)
		factor := j.TimeFactor
		if factor <= 0 {
			factor = 1
		}
		dur := event.Time(math.Round(quantum * float64(n.objTime) * factor))
		if dur < 1 {
			dur = 1
		}
		n.busy = true
		n.q.After(dur, func(now event.Time) {
			n.busy = false
			n.BusyTime += dur
			n.Objects += quantum
			j.Remaining -= quantum
			if j.Remaining <= remainingEps {
				j.Remaining = 0
			}
			// OnQuantum may cancel the job (the simulator's injected-abort
			// path), so the cancellation check runs both before and after.
			if n.OnQuantum != nil && !j.Cancelled {
				n.OnQuantum(j, quantum, now)
			}
			switch {
			case j.Cancelled:
				// Dropped: no completion callback, no requeue.
			case j.Remaining == 0:
				if n.OnStepDone != nil {
					n.OnStepDone(j, now)
				}
			default:
				n.jobs = append(n.jobs, j)
			}
			n.pump()
		})
	}
}
