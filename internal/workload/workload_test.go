package workload

import (
	"math"
	"math/rand"
	"testing"

	"batsched/internal/txn"
)

func TestPatternsMatchPaper(t *testing.T) {
	if got := Pattern1.String(); got != "r(F1:1) -> r(F2:5) -> w(F1:0.2) -> w(F2:1)" {
		t.Errorf("Pattern1 = %q", got)
	}
	if got := Pattern2.String(); got != "r(B:5) -> w(F1:1) -> w(F2:1)" {
		t.Errorf("Pattern2 = %q", got)
	}
	if got := Pattern3.String(); got != "r(B:4) -> w(F1:1) -> w(F2:2)" {
		t.Errorf("Pattern3 = %q", got)
	}
}

func TestExperiment1Binding(t *testing.T) {
	g := Experiment1(16)
	rng := rand.New(rand.NewSource(1))
	seen := map[txn.PartitionID]bool{}
	for i := 0; i < 500; i++ {
		tx := g.Next(txn.ID(i+1), rng)
		if len(tx.Steps) != 4 {
			t.Fatalf("steps = %v", tx.Steps)
		}
		f1, f2 := tx.Steps[0].Part, tx.Steps[1].Part
		if f1 == f2 {
			t.Fatalf("F1 == F2 == %v", f1)
		}
		if tx.Steps[2].Part != f1 || tx.Steps[3].Part != f2 {
			t.Fatalf("write steps bind wrong partitions: %v", tx)
		}
		for _, p := range []txn.PartitionID{f1, f2} {
			if p < 0 || int(p) >= 16 {
				t.Fatalf("partition %v out of range", p)
			}
			seen[p] = true
		}
		if tx.DeclaredTotal() != 7.2 {
			t.Fatalf("declared total = %g, want 7.2", tx.DeclaredTotal())
		}
	}
	if len(seen) != 16 {
		t.Errorf("only %d/16 partitions used in 500 draws", len(seen))
	}
}

func TestExperiment2Binding(t *testing.T) {
	l := HotSetLayout{NumReadOnly: 8, NumHots: 4}
	if l.NumParts() != 12 {
		t.Fatalf("NumParts = %d", l.NumParts())
	}
	g := Experiment2(l)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		tx := g.Next(txn.ID(i+1), rng)
		b, f1, f2 := tx.Steps[0].Part, tx.Steps[1].Part, tx.Steps[2].Part
		if int(b) >= 8 {
			t.Fatalf("B = %v not read-only", b)
		}
		if int(f1) < 8 || int(f1) >= 12 || int(f2) < 8 || int(f2) >= 12 {
			t.Fatalf("hot partitions out of range: %v %v", f1, f2)
		}
		if f1 == f2 {
			t.Fatalf("F1 == F2")
		}
		if tx.Steps[0].Mode != txn.Read || tx.Steps[1].Mode != txn.Write {
			t.Fatalf("modes wrong: %v", tx)
		}
	}
}

func TestExperiment3Costs(t *testing.T) {
	g := Experiment3(HotSetLayout{NumReadOnly: 8, NumHots: 8})
	tx := g.Next(1, rand.New(rand.NewSource(3)))
	want := []float64{4, 1, 2}
	for i, c := range want {
		if tx.Steps[i].Cost != c {
			t.Errorf("step %d cost = %g, want %g", i, tx.Steps[i].Cost, c)
		}
	}
}

func TestDeclarationErrorModel(t *testing.T) {
	base := Experiment1(16)
	// sigma = 0 wraps but produces exact declarations, consuming the same
	// random draws as any other sigma (paired comparisons).
	zero := WithDeclarationError(Experiment1(16), 0)
	r0 := rand.New(rand.NewSource(4))
	for i := 0; i < 50; i++ {
		tx := zero.Next(txn.ID(i+1), r0)
		for j, s := range tx.Steps {
			if tx.Declared[j] != s.Cost {
				t.Fatalf("sigma=0 perturbed declaration: %g != %g", tx.Declared[j], s.Cost)
			}
		}
	}
	g := WithDeclarationError(base, 0.5)
	rng := rand.New(rand.NewSource(4))
	var sumRel, n float64
	negSeen := false
	for i := 0; i < 2000; i++ {
		tx := g.Next(txn.ID(i+1), rng)
		for j, s := range tx.Steps {
			if s.Cost != Pattern1.Steps[j].Cost {
				t.Fatalf("true cost perturbed: %g != %g", s.Cost, Pattern1.Steps[j].Cost)
			}
			if tx.Declared[j] < 0 {
				t.Fatalf("negative declared cost %g", tx.Declared[j])
			}
			rel := tx.Declared[j]/s.Cost - 1
			sumRel += rel
			n++
			if rel < 0 {
				negSeen = true
			}
		}
	}
	if mean := sumRel / n; math.Abs(mean) > 0.05 {
		t.Errorf("relative error mean = %g, want ≈0", mean)
	}
	if !negSeen {
		t.Error("no under-declarations in 2000 draws")
	}
}

func TestDeclarationErrorClampsAtZero(t *testing.T) {
	g := WithDeclarationError(Experiment1(16), 5) // huge sigma: many x ≤ -1
	rng := rand.New(rand.NewSource(5))
	zero := false
	for i := 0; i < 200 && !zero; i++ {
		tx := g.Next(txn.ID(i+1), rng)
		for _, d := range tx.Declared {
			if d == 0 {
				zero = true
			}
		}
	}
	if !zero {
		t.Error("no clamped-to-zero declarations at sigma=5")
	}
}

// TestErrorModelPairedStreams verifies that different sigmas consume the
// same random draws, so sweeps across sigma compare the same workload
// realization (arrivals, bindings) with only declarations differing.
func TestErrorModelPairedStreams(t *testing.T) {
	a := WithDeclarationError(Experiment1(16), 0)
	b := WithDeclarationError(Experiment1(16), 1.0)
	ra := rand.New(rand.NewSource(9))
	rb := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		ta := a.Next(txn.ID(i+1), ra)
		tb := b.Next(txn.ID(i+1), rb)
		for j := range ta.Steps {
			if ta.Steps[j] != tb.Steps[j] {
				t.Fatalf("draw %d step %d diverged: %v vs %v", i, j, ta.Steps[j], tb.Steps[j])
			}
		}
	}
}

func TestFixedGenerator(t *testing.T) {
	a := txn.New(99, []txn.Step{{Mode: txn.Read, Part: 1, Cost: 2}})
	f := &Fixed{Label: "fixed", Txns: []*txn.T{a}}
	got := f.Next(7, rand.New(rand.NewSource(1)))
	if got.ID != 7 || got.Steps[0] != a.Steps[0] {
		t.Errorf("Fixed.Next = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("exhausted Fixed generator did not panic")
		}
	}()
	f.Next(8, nil)
}

func TestDeterminism(t *testing.T) {
	g1 := Experiment1(16)
	g2 := Experiment1(16)
	r1 := rand.New(rand.NewSource(42))
	r2 := rand.New(rand.NewSource(42))
	for i := 0; i < 50; i++ {
		a := g1.Next(txn.ID(i), r1)
		b := g2.Next(txn.ID(i), r2)
		for j := range a.Steps {
			if a.Steps[j] != b.Steps[j] {
				t.Fatalf("draw %d differs: %v vs %v", i, a, b)
			}
		}
	}
}

func TestUniformPattern(t *testing.T) {
	p := txn.MustParsePattern("custom", "r(H:6) -> w(M1:1) -> w(M2:1)")
	g := UniformPattern(p, 12)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 300; i++ {
		tx := g.Next(txn.ID(i+1), rng)
		seen := map[txn.PartitionID]bool{}
		h, m1, m2 := tx.Steps[0].Part, tx.Steps[1].Part, tx.Steps[2].Part
		for _, part := range []txn.PartitionID{h, m1, m2} {
			if int(part) < 0 || int(part) >= 12 {
				t.Fatalf("partition %v out of range", part)
			}
			if seen[part] {
				t.Fatalf("variables bound to the same partition: %v", tx)
			}
			seen[part] = true
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("too many variables accepted")
		}
	}()
	UniformPattern(p, 2)
}
