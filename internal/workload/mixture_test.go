package workload

import (
	"math"
	"math/rand"
	"testing"

	"batsched/internal/txn"
)

func TestMixtureValidation(t *testing.T) {
	if _, err := NewMixture("m"); err == nil {
		t.Error("empty mixture accepted")
	}
	if _, err := NewMixture("m", Component{Class: "a", Weight: 0, Gen: Experiment1(16)}); err == nil {
		t.Error("zero weight accepted")
	}
	if _, err := NewMixture("m", Component{Class: "a", Weight: 1}); err == nil {
		t.Error("nil generator accepted")
	}
}

func TestMixtureSharesAndClasses(t *testing.T) {
	short := ShortTransactions(16, 0.02)
	bats := Experiment1(16)
	m, err := NewMixture("mix",
		Component{Class: "short", Weight: 3, Gen: short},
		Component{Class: "bat", Weight: 1, Gen: bats},
	)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	counts := map[string]int{}
	const n = 4000
	for i := 1; i <= n; i++ {
		tx := m.Next(txn.ID(i), rng)
		class := m.ClassOf(tx.ID)
		counts[class]++
		switch class {
		case "short":
			if len(tx.Steps) != 2 || tx.Steps[0].Cost != 0.02 {
				t.Fatalf("short txn shape wrong: %v", tx)
			}
		case "bat":
			if len(tx.Steps) != 4 {
				t.Fatalf("bat txn shape wrong: %v", tx)
			}
		default:
			t.Fatalf("unknown class %q", class)
		}
	}
	frac := float64(counts["short"]) / n
	if math.Abs(frac-0.75) > 0.03 {
		t.Errorf("short share = %g, want ≈0.75", frac)
	}
	if m.ClassOf(999999) != "" {
		t.Error("unknown id has a class")
	}
}

func TestShortTransactionsDistinctParts(t *testing.T) {
	g := ShortTransactions(16, 0.05)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		tx := g.Next(txn.ID(i+1), rng)
		if tx.Steps[0].Part == tx.Steps[1].Part {
			t.Fatal("X == Y")
		}
		if tx.Steps[0].Mode != txn.Read || tx.Steps[1].Mode != txn.Write {
			t.Fatalf("modes: %v", tx)
		}
	}
}
