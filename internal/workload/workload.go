// Package workload generates the paper's BAT workloads (§4): the three
// transaction patterns, their random partition bindings, the hot-set
// layout of Experiments 2 and 3, and Experiment 4's erroneous
// I/O-demand declaration model.
package workload

import (
	"fmt"
	"math/rand"

	"batsched/internal/txn"
)

// The paper's transaction patterns. Step costs are the object counts
// printed in §4 (already folded through the read/update cost model of
// §2.2, e.g. w(F1:0.2) = 2 × 10% of the 1-object read of F1).
var (
	// Pattern1 (Experiments 1 and 4): "join the selected result of F1 with
	// F2, and update these partitions depending on the joined result".
	Pattern1 = txn.MustParsePattern("Pattern1", "r(F1:1) -> r(F2:5) -> w(F1:0.2) -> w(F2:1)")
	// Pattern2 (Experiment 2): read a read-only partition, update two hot
	// partitions.
	Pattern2 = txn.MustParsePattern("Pattern2", "r(B:5) -> w(F1:1) -> w(F2:1)")
	// Pattern3 (Experiment 3): like Pattern2 with a longer blocking time.
	Pattern3 = txn.MustParsePattern("Pattern3", "r(B:4) -> w(F1:1) -> w(F2:2)")
)

// Generator produces the next arriving transaction.
type Generator interface {
	// Name identifies the workload in result tables.
	Name() string
	// Next builds transaction id using rng for all randomness.
	Next(id txn.ID, rng *rand.Rand) *txn.T
}

// PatternGenerator instantiates a fixed pattern with a per-transaction
// random binding of its variables to partitions.
type PatternGenerator struct {
	Label   string
	Pattern *txn.Pattern
	// BindVars returns the binding for one transaction instance.
	BindVars func(rng *rand.Rand) map[string]txn.PartitionID
}

// Name implements Generator.
func (g *PatternGenerator) Name() string { return g.Label }

// Next implements Generator.
func (g *PatternGenerator) Next(id txn.ID, rng *rand.Rand) *txn.T {
	t, err := g.Pattern.Bind(id, g.BindVars(rng))
	if err != nil {
		panic(fmt.Sprintf("workload %s: %v", g.Label, err))
	}
	return t
}

// distinct draws k distinct partitions uniformly from pool.
func distinct(rng *rand.Rand, pool []txn.PartitionID, k int) []txn.PartitionID {
	if k > len(pool) {
		panic(fmt.Sprintf("workload: need %d distinct partitions from pool of %d", k, len(pool)))
	}
	idx := rng.Perm(len(pool))[:k]
	out := make([]txn.PartitionID, k)
	for i, j := range idx {
		out[i] = pool[j]
	}
	return out
}

// rangeParts returns [lo, lo+n) as partition ids.
func rangeParts(lo, n int) []txn.PartitionID {
	out := make([]txn.PartitionID, n)
	for i := range out {
		out[i] = txn.PartitionID(lo + i)
	}
	return out
}

// Experiment1 builds the Experiment 1/4 workload: Pattern1 with F1 and F2
// chosen randomly and distinctly among numParts partitions (paper: 16
// partitions of 5 objects each).
func Experiment1(numParts int) Generator {
	pool := rangeParts(0, numParts)
	return &PatternGenerator{
		Label:   fmt.Sprintf("Pattern1/NumParts=%d", numParts),
		Pattern: Pattern1,
		BindVars: func(rng *rand.Rand) map[string]txn.PartitionID {
			fs := distinct(rng, pool, 2)
			return map[string]txn.PartitionID{"F1": fs[0], "F2": fs[1]}
		},
	}
}

// HotSetLayout describes the Experiment 2/3 database: numReadOnly
// read-only partitions (ids 0..numReadOnly-1, one per node when
// numReadOnly equals NumNodes) followed by numHots hot partitions (ids
// numReadOnly..numReadOnly+numHots-1).
type HotSetLayout struct {
	NumReadOnly int
	NumHots     int
}

// NumParts returns the total partition count of the layout.
func (l HotSetLayout) NumParts() int { return l.NumReadOnly + l.NumHots }

// hotSetGenerator builds Pattern2/Pattern3-style workloads over a hot-set
// layout: B uniform over the read-only partitions, F1 and F2 distinct
// uniform over the hot set.
func hotSetGenerator(label string, p *txn.Pattern, l HotSetLayout) Generator {
	readOnly := rangeParts(0, l.NumReadOnly)
	hots := rangeParts(l.NumReadOnly, l.NumHots)
	return &PatternGenerator{
		Label:   label,
		Pattern: p,
		BindVars: func(rng *rand.Rand) map[string]txn.PartitionID {
			b := readOnly[rng.Intn(len(readOnly))]
			fs := distinct(rng, hots, 2)
			return map[string]txn.PartitionID{"B": b, "F1": fs[0], "F2": fs[1]}
		},
	}
}

// Experiment2 builds the Experiment 2 workload (Pattern2 over a hot set).
func Experiment2(l HotSetLayout) Generator {
	return hotSetGenerator(fmt.Sprintf("Pattern2/NumHots=%d", l.NumHots), Pattern2, l)
}

// Experiment3 builds the Experiment 3 workload (Pattern3 over a hot set;
// the paper fixes NumHots = 8).
func Experiment3(l HotSetLayout) Generator {
	return hotSetGenerator(fmt.Sprintf("Pattern3/NumHots=%d", l.NumHots), Pattern3, l)
}

// declarationError wraps a generator so that every declared I/O demand is
// perturbed per Experiment 4: C = C0 × (1 + x), x ~ N(0, σ), clamped to 0
// when x ≤ -1. True demands are untouched.
type declarationError struct {
	inner Generator
	sigma float64
}

// WithDeclarationError applies the Experiment 4 error model with standard
// deviation sigma to a generator's declared demands.
//
// sigma = 0 still wraps the generator (producing exact declarations) so
// that runs at different sigmas consume identical random streams: paired
// comparisons across sigma then see the same arrival sequence and
// partition bindings, and only the declared demands differ.
func WithDeclarationError(inner Generator, sigma float64) Generator {
	if sigma < 0 {
		panic(fmt.Sprintf("workload: negative sigma %g", sigma))
	}
	return &declarationError{inner: inner, sigma: sigma}
}

// Name implements Generator.
func (d *declarationError) Name() string {
	return fmt.Sprintf("%s/sigma=%g", d.inner.Name(), d.sigma)
}

// Next implements Generator.
func (d *declarationError) Next(id txn.ID, rng *rand.Rand) *txn.T {
	t := d.inner.Next(id, rng)
	declared := make([]float64, len(t.Steps))
	for i, s := range t.Steps {
		x := rng.NormFloat64() * d.sigma
		c := s.Cost * (1 + x)
		if c < 0 {
			c = 0
		}
		declared[i] = c
	}
	return txn.NewDeclared(t.ID, t.Steps, declared)
}

// Fixed replays a fixed list of transactions (for tests and examples);
// after the list is exhausted it panics.
type Fixed struct {
	Label string
	Txns  []*txn.T
	next  int
}

// Name implements Generator.
func (f *Fixed) Name() string { return f.Label }

// Next implements Generator.
func (f *Fixed) Next(id txn.ID, rng *rand.Rand) *txn.T {
	if f.next >= len(f.Txns) {
		panic("workload: Fixed generator exhausted")
	}
	t := f.Txns[f.next]
	f.next++
	// Re-identify so simulator-assigned ids stay unique.
	return &txn.T{ID: id, Steps: t.Steps, Declared: t.Declared}
}

// UniformPattern builds a generator for an arbitrary user pattern: every
// variable is bound, per transaction, to a distinct partition drawn
// uniformly from [0, numParts). Used by cmd/batsim's -pattern flag.
func UniformPattern(p *txn.Pattern, numParts int) Generator {
	vars := p.Vars()
	if len(vars) > numParts {
		panic(fmt.Sprintf("workload: pattern %q has %d variables but only %d partitions",
			p.Name, len(vars), numParts))
	}
	pool := rangeParts(0, numParts)
	return &PatternGenerator{
		Label:   fmt.Sprintf("%s/NumParts=%d", p.Name, numParts),
		Pattern: p,
		BindVars: func(rng *rand.Rand) map[string]txn.PartitionID {
			ps := distinct(rng, pool, len(vars))
			binding := make(map[string]txn.PartitionID, len(vars))
			for i, v := range vars {
				binding[v] = ps[i]
			}
			return binding
		},
	}
}
