package workload

import (
	"fmt"
	"math/rand"

	"batsched/internal/txn"
)

// Component is one class of a mixed workload: a generator, its class
// label, and its share of the arrival stream.
type Component struct {
	Class  string
	Weight float64
	Gen    Generator
}

// Mixture draws each arriving transaction from one component with
// probability proportional to its weight, remembering each transaction's
// class so the simulator can report per-class metrics (the paper's
// conclusion: "in mixed transaction processing, different schedulers are
// necessary for different classes of jobs").
//
// A Mixture instance belongs to a single simulation run.
type Mixture struct {
	Label      string
	Components []Component
	classOf    map[txn.ID]string
	total      float64
}

// NewMixture builds a mixture; weights must be positive.
func NewMixture(label string, components ...Component) (*Mixture, error) {
	if len(components) == 0 {
		return nil, fmt.Errorf("workload: empty mixture")
	}
	m := &Mixture{Label: label, Components: components, classOf: make(map[txn.ID]string)}
	for _, c := range components {
		if c.Weight <= 0 {
			return nil, fmt.Errorf("workload: component %q weight %g", c.Class, c.Weight)
		}
		if c.Gen == nil {
			return nil, fmt.Errorf("workload: component %q has no generator", c.Class)
		}
		m.total += c.Weight
	}
	return m, nil
}

// Name implements Generator.
func (m *Mixture) Name() string { return m.Label }

// Next implements Generator.
func (m *Mixture) Next(id txn.ID, rng *rand.Rand) *txn.T {
	u := rng.Float64() * m.total
	acc := 0.0
	comp := m.Components[len(m.Components)-1]
	for _, c := range m.Components {
		acc += c.Weight
		if u < acc {
			comp = c
			break
		}
	}
	t := comp.Gen.Next(id, rng)
	m.classOf[id] = comp.Class
	return t
}

// ClassOf returns the class of a generated transaction (empty string for
// unknown ids). Pass it as sim.Config.Classify via a closure:
//
//	cfg.Classify = func(t *txn.T) string { return mix.ClassOf(t.ID) }
func (m *Mixture) ClassOf(id txn.ID) string { return m.classOf[id] }

// ShortTransactions builds a short-transaction (on-line, debit-credit
// style) generator: read one partition and update another, each touching
// a tiny fraction of the data. Costs are in objects; with ObjTime = 1 s
// and cost 0.02 a step takes 20 ms of node time — but it still locks the
// whole partition, which is exactly why mixing classes is hard.
func ShortTransactions(numParts int, stepCost float64) Generator {
	p := txn.MustParsePattern("Short", fmt.Sprintf("r(X:%g) -> w(Y:%g)", stepCost, stepCost))
	pool := rangeParts(0, numParts)
	return &PatternGenerator{
		Label:   fmt.Sprintf("Short/cost=%g", stepCost),
		Pattern: p,
		BindVars: func(rng *rand.Rand) map[string]txn.PartitionID {
			ps := distinct(rng, pool, 2)
			return map[string]txn.PartitionID{"X": ps[0], "Y": ps[1]}
		},
	}
}
