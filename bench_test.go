// Macro-benchmarks regenerating each figure of the paper's evaluation
// section (one benchmark per figure, plus one for the Table 1 machine
// defaults used by all of them). They run the real experiment harness at
// a reduced horizon so `go test -bench=.` completes in minutes; the
// full-length regeneration is `go run ./cmd/batbench -all`.
//
// Custom metrics report the paper's headline numbers: tps@rt70/<sched>
// is the interpolated throughput at mean response time 70 s.
package batsched_test

import (
	"fmt"
	"testing"

	"batsched"
)

// benchOpts are reduced-horizon settings for benchmark runs.
func benchOpts(seed int64) batsched.ExperimentOptions {
	return batsched.ExperimentOptions{
		Machine:         batsched.DefaultMachine(),
		Horizon:         300_000,
		Seed:            seed,
		Workers:         0, // GOMAXPROCS
		Lambdas:         []float64{0.2, 0.4, 0.6, 0.8, 1.0},
		RTTargetSeconds: 70,
	}
}

// BenchmarkFigure6 regenerates Experiment 1's response-time curves
// (Figure 6) and reports the λ=0.6 mean response times per scheduler.
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := batsched.RunExperiment1(benchOpts(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range r.Sweeps {
			for _, p := range s.Points {
				if p.Lambda == 0.6 {
					b.ReportMetric(p.Result.MeanRT, "rt@0.6/"+s.Label)
				}
			}
		}
	}
}

// BenchmarkFigure7 regenerates Experiment 1's throughput curves
// (Figure 7) and reports throughput at RT = 70 s per scheduler.
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := batsched.RunExperiment1(benchOpts(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		for label, tps := range r.ThroughputTable() {
			b.ReportMetric(tps, "tps@rt70/"+label)
		}
	}
}

// BenchmarkFigure8 regenerates Experiment 2 (hot-set sweep, Figure 8)
// and reports each scheduler's throughput at NumHots = 4 and 32.
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := batsched.RunExperiment2(benchOpts(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		for label, tps := range r.TPS {
			b.ReportMetric(tps[0], fmt.Sprintf("tps@hots%d/%s", r.NumHots[0], label))
			last := len(tps) - 1
			b.ReportMetric(tps[last], fmt.Sprintf("tps@hots%d/%s", r.NumHots[last], label))
		}
	}
}

// BenchmarkFigure9 regenerates Experiment 3 (Pattern3 response times,
// Figure 9) and reports throughput at RT = 70 s per scheduler.
func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := batsched.RunExperiment3(benchOpts(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range r.Sweeps {
			tps, _ := s.ThroughputAt(r.RTTarget)
			b.ReportMetric(tps, "tps@rt70/"+s.Label)
		}
	}
}

// BenchmarkFigure10 regenerates Experiment 4 (declaration-error
// sensitivity, Figure 10) at σ ∈ {0, 1} and reports each scheduler's
// relative throughput retention at σ = 1.
func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := batsched.RunExperiment4(benchOpts(int64(i+1)), []float64{0, 1})
		if err != nil {
			b.Fatal(err)
		}
		for label, tps := range r.TPS {
			b.ReportMetric(tps[0], "tps@sig0/"+label)
			b.ReportMetric(tps[1], "tps@sig1/"+label)
		}
	}
}

// BenchmarkTable1SingleRun measures the cost of one default-machine
// simulation run (the unit of every figure's grid).
func BenchmarkTable1SingleRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := batsched.SimConfig{
			Machine:              batsched.DefaultMachine(),
			Scheduler:            batsched.KWTPG(2),
			Workload:             batsched.WorkloadExperiment1(16),
			ArrivalRate:          0.6,
			Horizon:              200_000,
			Seed:                 int64(i + 1),
			CheckSerializability: true,
		}
		if _, err := batsched.Simulate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMakespanPlanner measures planning a 24-BAT batch across two
// strategies under the K2 scheduler (the examples/makespan workload).
func BenchmarkMakespanPlanner(b *testing.B) {
	batch := batsched.RandomBatch(batsched.WorkloadExperiment1(16), 24, 42)
	for i := 0; i < b.N; i++ {
		evals, err := batsched.ComparePlans(batch, batsched.DefaultMachine(),
			[]batsched.SchedulerFactory{batsched.KWTPG(2)},
			[]batsched.PlanStrategy{batsched.Flood{}, batsched.Stagger{Gap: 2000}},
		)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(evals[0].Makespan), "best-makespan-ms")
	}
}

// BenchmarkAblationKeeptime measures the §3.4 control-saving ablation at
// reduced scale: CHAIN with caching disabled vs the 5 s default.
func BenchmarkAblationKeeptime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, keeptime := range []batsched.Time{0, 5000} {
			mc := batsched.DefaultMachine()
			mc.Control.KeepTime = keeptime
			res, err := batsched.Simulate(batsched.SimConfig{
				Machine:              mc,
				Scheduler:            batsched.CHAIN(),
				Workload:             batsched.WorkloadExperiment1(16),
				ArrivalRate:          0.6,
				Horizon:              300_000,
				Seed:                 int64(i + 1),
				CheckSerializability: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.CNUtilization, fmt.Sprintf("cn-util@keep%d", keeptime))
			b.ReportMetric(res.Throughput, fmt.Sprintf("tps@keep%d", keeptime))
		}
	}
}

// BenchmarkAblationPlacement measures mod vs declustered placement (the
// §4.3 intra-transaction-parallelism ablation) at reduced scale.
func BenchmarkAblationPlacement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, declustered := range []bool{false, true} {
			res, err := batsched.Simulate(batsched.SimConfig{
				Machine:              batsched.DefaultMachine(),
				Scheduler:            batsched.KWTPG(2),
				Workload:             batsched.WorkloadExperiment1(16),
				ArrivalRate:          0.6,
				Horizon:              300_000,
				Seed:                 int64(i + 1),
				CheckSerializability: true,
				Declustered:          declustered,
			})
			if err != nil {
				b.Fatal(err)
			}
			label := "mod"
			if declustered {
				label = "declustered"
			}
			b.ReportMetric(res.MeanNodeUtil, "dn-util/"+label)
			b.ReportMetric(res.MeanRT, "rt/"+label)
		}
	}
}
