# Tier-1 check (ROADMAP.md) plus static analysis and the race detector
# on the concurrency-sensitive packages.

GO ?= go

.PHONY: build test bench verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem

verify: build test
	$(GO) vet ./...
	$(GO) test -race ./internal/live/... ./internal/obs/...
