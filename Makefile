# Tier-1 check (ROADMAP.md) plus static analysis and the race detector
# on the concurrency-sensitive packages.

GO ?= go

.PHONY: build test bench chaos verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem

# chaos runs the fault-injection suites (docs/ROBUSTNESS.md) under the
# race detector: the simulator's 100-seed × scheduler matrix, the live
# controller's goroutine chaos, and the abort/watchdog regression tests.
# Seeds are fixed — a red chaos run reproduces.
chaos:
	$(GO) test -race -count=1 -run 'Chaos|TestAbort|TestWatchdog|TestFaults' \
		./internal/sim/ ./internal/live/ ./internal/fault/ ./internal/core/sched/

verify: build test chaos
	$(GO) vet ./...
	$(GO) test -race ./internal/live/... ./internal/obs/...
