# Tier-1 check (ROADMAP.md) plus static analysis and the race detector
# on the concurrency-sensitive packages.

GO ?= go

.PHONY: build test bench bench-all bench-smoke bench-harness bench-epoch bench-live bench-storage bench-pr10 bench-storage-smoke epoch-smoke chaos chaos-nodes chaos-restart verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The PR3 performance-tracking set: the Table 1 macro benchmark plus the
# WTPG/estimate micro-benchmarks that gate the allocation-free engine.
PR3_BENCH := BenchmarkTable1SingleRun|BenchmarkEstimateE|BenchmarkESmall|BenchmarkELarge
PR3_BENCH := $(PR3_BENCH)|BenchmarkCriticalPath|BenchmarkCriticalPathStar|BenchmarkGraphChurn
PR3_BENCH := $(PR3_BENCH)|BenchmarkWouldCycleFromStar|BenchmarkCloneStar
PR3_PKGS  := . ./internal/core/wtpg/ ./internal/core/estimate/

# bench reruns the tracking set (3 samples each) into
# bench/current_pr3.txt — plain `go test -bench` text, so
# `benchstat bench/baseline_pr3.txt bench/current_pr3.txt` works on the
# two files directly — and regenerates the committed BENCH_PR3.json
# before/after summary from baseline vs current.
bench:
	$(GO) test -run '^$$' -bench '^($(PR3_BENCH))$$' -benchmem -count 3 $(PR3_PKGS) \
		| tee bench/current_pr3.txt
	$(GO) run ./tools/benchjson -old bench/baseline_pr3.txt -new bench/current_pr3.txt \
		-note "baseline = pre-slot-engine (map-based WTPG, clone-based E)" > BENCH_PR3.json

# The PR5 set tracks the parallel experiment harness: the smoke sweep at
# -parallel 1 vs NumCPU workers, and the event-queue churn benchmark
# gating the free-list's zero-alloc steady state.
PR5_BENCH := BenchmarkSweepParallel1|BenchmarkSweepParallelN|BenchmarkQueueChurn
PR5_PKGS  := ./internal/experiments/ ./internal/event/

# bench-harness reruns the PR5 set (3 samples each) into
# bench/current_pr5.txt and regenerates the committed BENCH_PR5.json
# from baseline (pre-free-list event queue) vs current.
bench-harness:
	$(GO) test -run '^$$' -bench '^($(PR5_BENCH))$$' -benchmem -count 3 $(PR5_PKGS) \
		| tee bench/current_pr5.txt
	$(GO) run ./tools/benchjson -old bench/baseline_pr5.txt -new bench/current_pr5.txt \
		-note "baseline = pre-free-list event queue, same parallel harness; SweepParallel1 vs SweepParallelN within one column is the scaling measurement, N = NumCPU of the recording host ($(shell nproc) when last regenerated — on a 1-core host the two are equal by construction; re-run on a multicore host to see the fan-out)" > BENCH_PR5.json

# bench-epoch regenerates the committed BENCH_PR6.json: the EPOCH
# batch-window sweep — makespan and p99 latency vs window size (the
# per-arrival CHAIN baseline plus five nonzero windows) over a fixed
# Pattern1 stream. The document is a pure function of the sweep (no
# timestamps, no host data), so an unchanged tree regenerates
# byte-identical output at any -parallel level.
bench-epoch:
	$(GO) run ./cmd/batbench -epoch -q -json BENCH_PR6.json
	@echo wrote BENCH_PR6.json

# epoch-smoke drives the epoch path end to end — registry lookup, batch
# admission, window flushes, the sweep harness and its JSON export —
# on a tiny sweep, so verify catches breakage without the cost of the
# committed document's full run.
epoch-smoke:
	$(GO) run ./cmd/batbench -epoch -quick -q -maxtxns 20 -windows 0,500,2000 -json /dev/null

# The PR8 set tracks the sharded live controller: open-loop throughput
# through the real-goroutine hot path at GOMAXPROCS 1/2/4/8.
# bench-live records the committed BENCH_PR8.json as a benchstat-style
# old/new comparison — old = LIVE_SHARDS=1 (the single global mutex),
# new = the default sharded configuration (16 shards) — from the same
# BenchmarkLiveThroughput binary.
PR8_BENCH := BenchmarkLiveThroughput
PR8_PKGS  := ./internal/live/

bench-live:
	LIVE_SHARDS=1 $(GO) test -run '^$$' -bench '^($(PR8_BENCH))$$' -benchmem -count 3 $(PR8_PKGS) \
		| tee bench/baseline_pr8.txt
	$(GO) test -run '^$$' -bench '^($(PR8_BENCH))$$' -benchmem -count 3 $(PR8_PKGS) \
		| tee bench/current_pr8.txt
	$(GO) run ./tools/benchjson -old bench/baseline_pr8.txt -new bench/current_pr8.txt \
		-note "old = single-mutex controller (LIVE_SHARDS=1), new = 16-shard hot path; /p=N pins GOMAXPROCS=N — on a 1-core recording host ($(shell nproc) cores when last regenerated) the p2/p4/p8 columns cannot show multicore scaling, re-run on a multicore host for the GOMAXPROCS curve" > BENCH_PR8.json
	@echo wrote BENCH_PR8.json

# The PR9 set tracks the heap-file storage engine (docs/STORAGE.md):
# full-partition scan and insert throughput through the buffer pool
# (real MB/s via b.SetBytes) and the live controller with real page I/O
# attached to every step. bench-storage records the committed
# BENCH_PR9.json — old = pool starved to 4 frames (the disk-read path)
# and the storage-free live hot path, new = the default pool (cached
# scans) and the heap-backed controller — so the document shows both
# what the pool buys on scans and what real page I/O costs the
# controller.
PR9_BENCH := BenchmarkStorageScan|BenchmarkStorageInsert
PR9_PKGS  := ./internal/storage/

bench-storage:
	STORAGE_POOL=4 $(GO) test -run '^$$' -bench '^($(PR9_BENCH))$$' -benchmem -count 3 $(PR9_PKGS) \
		| tee bench/baseline_pr9.txt
	LIVE_SHARDS=1 $(GO) test -run '^$$' -bench '^($(PR8_BENCH))$$' -benchmem -count 3 $(PR8_PKGS) \
		| tee -a bench/baseline_pr9.txt
	$(GO) test -run '^$$' -bench '^($(PR9_BENCH))$$' -benchmem -count 3 $(PR9_PKGS) \
		| tee bench/current_pr9.txt
	LIVE_SHARDS=1 LIVE_STORAGE=1 $(GO) test -run '^$$' -bench '^($(PR8_BENCH))$$' -benchmem -count 3 $(PR8_PKGS) \
		| tee -a bench/current_pr9.txt
	$(GO) run ./tools/benchjson -old bench/baseline_pr9.txt -new bench/current_pr9.txt \
		-note "StorageScan/Insert: old = STORAGE_POOL=4 (pool starved, disk-read path), new = default 64-frame pool; LiveThroughput: old = single-mutex controller without storage, new = the same controller with LIVE_STORAGE=1 heap files on every step — the txn/s drop is the real page-I/O cost; recorded on a $(shell nproc)-core host" > BENCH_PR9.json
	@echo wrote BENCH_PR9.json

# The PR10 set re-measures the storage-backed live hot path after the
# striped-pool / zero-copy-scan / background-flusher rework. The two
# baseline files are committed artifacts recorded with the PR 9 engine
# on this host — bench/baseline_pr10.txt (LIVE_STORAGE=1 live + storage
# benches) and bench/baseline_pr10_off.txt (the storage-free ceiling) —
# and cannot be regenerated from the current tree; bench-pr10 re-records
# only the current engine and rebuilds BENCH_PR10.json. recovered_pct =
# how much of the old→ceiling throughput gap (the PR 9 storage tax) the
# new engine claws back.
bench-pr10:
	LIVE_SHARDS=1 LIVE_STORAGE=1 $(GO) test -run '^$$' -bench '^($(PR8_BENCH))$$' -benchmem -count 3 $(PR8_PKGS) \
		| tee bench/current_pr10.txt
	$(GO) test -run '^$$' -bench '^($(PR9_BENCH))$$' -benchmem -count 3 $(PR9_PKGS) \
		| tee -a bench/current_pr10.txt
	$(GO) run ./tools/benchjson -old bench/baseline_pr10.txt -new bench/current_pr10.txt \
		-ceiling bench/baseline_pr10_off.txt \
		-note "old = PR 9 storage engine with LIVE_STORAGE=1 (single-mutex pool, per-record-copy scans, synchronous commit flush), new = striped pool + zero-copy batched scans + background flusher, ceiling = same controller with storage off; all three recorded on the same $(shell nproc)-core host" > BENCH_PR10.json
	@echo wrote BENCH_PR10.json

# bench-storage-smoke executes the storage benchmarks and the
# storage-backed live throughput benchmark exactly once, so verify
# catches a broken storage hot path (including the LIVE_STORAGE wiring
# and the background flusher the bench enables) without a measurement
# run.
bench-storage-smoke:
	$(GO) test -run '^$$' -bench '^($(PR9_BENCH))$$' -benchtime 1x $(PR9_PKGS)
	LIVE_STORAGE=1 $(GO) test -run '^$$' -bench '^($(PR8_BENCH))$$' -benchtime 1x $(PR8_PKGS)

# bench-all is the old kitchen-sink run over every benchmark in the repo.
bench-all:
	$(GO) test -bench=. -benchmem ./...

# bench-smoke executes each tracked benchmark exactly once so verify
# catches benchmarks that no longer compile or crash, without the cost
# of a measurement run.
bench-smoke:
	$(GO) test -run '^$$' -bench '^($(PR3_BENCH))$$' -benchtime 1x $(PR3_PKGS)
	$(GO) test -run '^$$' -bench '^($(PR5_BENCH))$$' -benchtime 1x $(PR5_PKGS)
	$(GO) test -run '^$$' -bench '^($(PR8_BENCH))$$' -benchtime 1x $(PR8_PKGS)
	$(GO) test -run '^$$' -bench '^($(PR9_BENCH))$$' -benchtime 1x $(PR9_PKGS)

# chaos runs the fault-injection suites (docs/ROBUSTNESS.md) under the
# race detector: the simulator's 100-seed × scheduler matrix (including
# the 100-seed epoch-window run, TestChaosEpoch), the live controller's
# goroutine chaos (including the epoch pipeline, TestEpochChaosLive),
# and the abort/watchdog regression tests. Seeds are fixed — a red
# chaos run reproduces.
chaos:
	$(GO) test -race -count=1 -run 'Chaos|TestAbort|TestWatchdog|TestFaults|StorageDifferential' \
		./internal/sim/ ./internal/live/ ./internal/fault/ ./internal/core/sched/

# chaos-nodes runs the node-crash recovery battery (docs/ROBUSTNESS.md
# §8) under the race detector: the crashed-node chaos matrix, the
# differential (subset-of-clean-run) test, the seeded 8-node acceptance
# scenario, the live CrashNode tests, and the model checker's
# crash-at-every-prefix exploration.
chaos-nodes:
	$(GO) test -race -count=1 -run 'NodeCrash|CrashNode|CrashedCommits|CrashAnywhere|ErrNodeCrashed|EpisodesNotTicks|Placement|DataNodeKill' \
		./internal/sim/ ./internal/live/ ./internal/fault/ ./internal/machine/ ./internal/modelcheck/

# chaos-restart runs the kill-and-restart battery (docs/ROBUSTNESS.md
# §9) under the race detector: WAL encode/decode + corruption fuzz +
# group commit, the simulator's 100-seed × scheduler kill matrix with
# replay-equivalence checks, the live controller's crash/recover round
# trip, the KillAt determinism test, and the recovery model checker.
# Every failure message carries a one-line repro (scheduler, seed, kill
# point, flush fraction).
chaos-restart:
	$(GO) test -race -count=1 -run 'Restart|KillRestart|KillAt|Recover|WAL|Replay|Torn|GroupCommit|Corruption|RoundTrip' \
		./internal/wal/ ./internal/sim/ ./internal/live/ ./internal/fault/ ./internal/modelcheck/ ./internal/storage/

verify: build test chaos chaos-nodes chaos-restart bench-smoke bench-storage-smoke epoch-smoke
	$(GO) vet ./...
	$(GO) test -race ./internal/live/... ./internal/obs/... ./internal/core/sched/ ./internal/core/wtpg/ ./internal/experiments/ ./internal/event/ ./internal/wal/ ./internal/storage/
	$(GO) test -race -count=1 -run 'Stripe|ZeroCopy|FlusherLag|PoolConcurrent' ./internal/storage/
	$(GO) test -race -count=1 -run 'Epoch' ./internal/core/sched/ ./internal/sim/
	$(GO) test -tags wtpgshadow -count=1 ./internal/core/... ./internal/sim/
