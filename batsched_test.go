package batsched_test

import (
	"math"
	"strings"
	"testing"

	"batsched"
)

// TestFacadeFigure1Workflow drives the public API through the paper's
// Figure 1/2 worked example: build transactions, compute conflict
// weights, assemble a WTPG, solve the chain optimization, and check the
// E(q) estimates.
func TestFacadeFigure1Workflow(t *testing.T) {
	t1 := batsched.NewTransaction(1, []batsched.Step{
		{Mode: batsched.Read, Part: 0, Cost: 1},
		{Mode: batsched.Read, Part: 1, Cost: 3},
		{Mode: batsched.Write, Part: 0, Cost: 1},
	})
	t2 := batsched.NewTransaction(2, []batsched.Step{
		{Mode: batsched.Read, Part: 2, Cost: 1},
		{Mode: batsched.Write, Part: 0, Cost: 1},
	})
	t3 := batsched.NewTransaction(3, []batsched.Step{
		{Mode: batsched.Write, Part: 2, Cost: 1},
		{Mode: batsched.Read, Part: 3, Cost: 3},
	})

	g := batsched.NewWTPG()
	for _, tx := range []*batsched.Transaction{t1, t2, t3} {
		if err := g.AddNode(tx.ID, tx.DeclaredTotal()); err != nil {
			t.Fatal(err)
		}
	}
	for _, pair := range [][2]*batsched.Transaction{{t1, t2}, {t2, t3}} {
		wab, wba, ok := batsched.ConflictWeights(pair[0], pair[1])
		if !ok {
			t.Fatalf("%v vs %v: no conflict", pair[0].ID, pair[1].ID)
		}
		if err := g.AddConflict(pair[0].ID, pair[1].ID, wab, wba); err != nil {
			t.Fatal(err)
		}
	}
	chains, ok := g.Chains()
	if !ok || len(chains) != 1 || len(chains[0]) != 3 {
		t.Fatalf("chains = %v, %v", chains, ok)
	}

	// Build and solve the chain problem: optimal W = {T1→T2, T3→T2},
	// critical path 6 (Example 3.2).
	prob := batsched.ChainProblem{
		R:    []float64{5, 2, 4},
		Down: []float64{1, 4},
		Up:   []float64{5, 2},
	}
	sol, err := batsched.SolveChain(prob)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Length != 6 {
		t.Errorf("optimal critical path = %g, want 6", sol.Length)
	}
	paper, err := batsched.SolveChainPaper(prob)
	if err != nil {
		t.Fatal(err)
	}
	if paper.Length != sol.Length {
		t.Errorf("appendix algorithm disagrees: %g vs %g", paper.Length, sol.Length)
	}
	oracle, err := batsched.SolveChainExhaustive(prob)
	if err != nil {
		t.Fatal(err)
	}
	if oracle.Length != sol.Length {
		t.Errorf("oracle disagrees: %g vs %g", oracle.Length, sol.Length)
	}

	// E(q) through the facade.
	if e := batsched.EstimateE(g, 1, []batsched.TxnID{2}); math.IsInf(e, 1) {
		t.Error("E(q) infinite on acyclic grant")
	}
}

func TestFacadePatternParse(t *testing.T) {
	p, err := batsched.ParsePattern("Pattern1", "r(F1:1) -> r(F2:5) -> w(F1:0.2) -> w(F2:1)")
	if err != nil {
		t.Fatal(err)
	}
	tx, err := p.Bind(9, map[string]batsched.PartitionID{"F1": 0, "F2": 1})
	if err != nil {
		t.Fatal(err)
	}
	if tx.DeclaredTotal() != 7.2 {
		t.Errorf("total = %g, want 7.2", tx.DeclaredTotal())
	}
}

func TestFacadeSimulation(t *testing.T) {
	for _, f := range []batsched.SchedulerFactory{
		batsched.CHAIN(), batsched.KWTPG(2), batsched.ASL(), batsched.C2PL(),
		batsched.ChainC2PL(), batsched.KConflictC2PL(2),
	} {
		cfg := batsched.SimConfig{
			Machine:              batsched.DefaultMachine(),
			Scheduler:            f,
			Workload:             batsched.WorkloadExperiment1(16),
			ArrivalRate:          0.4,
			Horizon:              120_000,
			Seed:                 3,
			CheckSerializability: true,
		}
		res, err := batsched.Simulate(cfg)
		if err != nil {
			t.Fatalf("%s: %v", f.Label, err)
		}
		if res.Completed == 0 {
			t.Errorf("%s: no completions", f.Label)
		}
	}
	// NODC needs the check disabled.
	cfg := batsched.SimConfig{
		Machine:     batsched.DefaultMachine(),
		Scheduler:   batsched.NODC(),
		Workload:    batsched.WorkloadExperiment1(16),
		ArrivalRate: 0.4,
		Horizon:     120_000,
		Seed:        3,
	}
	if _, err := batsched.Simulate(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeHotSetAndErrorWorkloads(t *testing.T) {
	layout := batsched.HotSetLayout{NumReadOnly: 8, NumHots: 4}
	mc := batsched.DefaultMachine()
	mc.NumParts = layout.NumParts()
	cfg := batsched.SimConfig{
		Machine:              mc,
		Scheduler:            batsched.KWTPG(2),
		Workload:             batsched.WithDeclarationError(batsched.WorkloadExperiment2(layout), 0.5),
		ArrivalRate:          0.4,
		Horizon:              120_000,
		Seed:                 4,
		CheckSerializability: true,
	}
	res, err := batsched.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Error("no completions under error model")
	}
	if !strings.Contains(res.Workload, "sigma=0.5") {
		t.Errorf("workload name = %q", res.Workload)
	}
}

func TestFacadeExperimentHarness(t *testing.T) {
	o := batsched.ExperimentOptions{
		Horizon: 100_000,
		Lambdas: []float64{0.3},
		Seed:    5,
	}
	r, err := batsched.RunExperiment1(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Sweeps) != 5 {
		t.Fatalf("sweeps = %d", len(r.Sweeps))
	}
	if out := r.RenderFigure6(); !strings.Contains(out, "Figure 6") {
		t.Error("figure rendering broken")
	}
}

func TestFacadePlanner(t *testing.T) {
	batch := batsched.RandomBatch(batsched.WorkloadExperiment1(16), 8, 3)
	if len(batch) != 8 {
		t.Fatalf("batch = %d", len(batch))
	}
	ev, err := batsched.EvaluatePlan(batch, batsched.DefaultMachine(),
		batsched.KWTPG(2), batsched.Flood{})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Makespan <= 0 {
		t.Errorf("makespan = %v", ev.Makespan)
	}
	evals, err := batsched.ComparePlans(batch, batsched.DefaultMachine(),
		[]batsched.SchedulerFactory{batsched.C2PL()},
		[]batsched.PlanStrategy{batsched.Flood{}, batsched.Stagger{Gap: 1000}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(evals) != 2 {
		t.Fatalf("evals = %d", len(evals))
	}
	if out := batsched.RenderPlanTable(evals); !strings.Contains(out, "makespan") {
		t.Errorf("render:\n%s", out)
	}
}

func TestFacadeExtensions(t *testing.T) {
	o := batsched.ExperimentOptions{Horizon: 80_000, Lambdas: []float64{0.3}, Seed: 9}
	ks, err := batsched.RunKSweep(o, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if len(ks.Variants) != 1 {
		t.Fatalf("ksweep variants = %v", ks.Variants)
	}
	pl, err := batsched.RunPlacementAblation(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Variants) != 2 {
		t.Fatalf("placement variants = %v", pl.Variants)
	}
	mix, err := batsched.RunMixedWorkload(o, 1.0, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if len(mix.Rows) == 0 {
		t.Fatal("no mixed rows")
	}
	// Remaining figure harnesses through the facade.
	if _, err := batsched.RunExperiment2(o); err != nil {
		t.Fatal(err)
	}
	if _, err := batsched.RunExperiment3(o); err != nil {
		t.Fatal(err)
	}
	if _, err := batsched.RunExperiment4(o, []float64{0.5}); err != nil {
		t.Fatal(err)
	}
}

func TestFacadePathTrace(t *testing.T) {
	g := batsched.NewWTPG()
	if err := g.AddNode(1, 5); err != nil {
		t.Fatal(err)
	}
	path, length, err := g.CriticalPathTrace()
	if err != nil || length != 5 {
		t.Fatalf("trace = %v,%g,%v", path, length, err)
	}
	if got := batsched.FormatWTPGPath(path, length); got != "T0 -> T1 -> Tf (length 5)" {
		t.Errorf("FormatWTPGPath = %q", got)
	}
}
