// Command benchjson condenses `go test -bench` text output into a JSON
// comparison table. The raw text files stay benchstat-compatible
// (`benchstat old.txt new.txt` works on them directly); the JSON is the
// committed artifact (BENCH_PR3.json) so before/after numbers survive in
// the repo without requiring benchstat to read them.
//
// Usage:
//
//	benchjson -old bench/baseline_pr3.txt -new bench/current_pr3.txt
//
// An optional third input, -ceiling, names the no-storage (or otherwise
// unencumbered) run of the same benchmarks. When a benchmark carries a
// txn/s metric in all three files, the row gains `recovered_pct`: how
// much of the old→ceiling throughput gap the new run recovers
// ((new-old)/(ceiling-old)*100 — 0 means no better than the old
// storage-on run, 100 means storage became free).
//
// Lines that are not benchmark results are ignored. Repeated runs of the
// same benchmark (−count > 1) are averaged.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

type metrics struct {
	Runs        int     `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
	TxnPerSec   float64 `json:"txn_per_sec,omitempty"`
	HitPct      float64 `json:"hit_pct,omitempty"`
}

type row struct {
	Name           string   `json:"name"`
	Old            *metrics `json:"old,omitempty"`
	New            *metrics `json:"new,omitempty"`
	Ceiling        *metrics `json:"ceiling,omitempty"`
	DeltaNsPct     *float64 `json:"delta_ns_pct,omitempty"`
	DeltaAllocsPct *float64 `json:"delta_allocs_pct,omitempty"`
	DeltaMBPct     *float64 `json:"delta_mb_pct,omitempty"`
	DeltaTxnPct    *float64 `json:"delta_txn_pct,omitempty"`
	RecoveredPct   *float64 `json:"recovered_pct,omitempty"`
}

var benchLine = regexp.MustCompile(
	`^(Benchmark\S*?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:.*?\s([\d.]+) B/op\s+([\d.]+) allocs/op)?`)

// Throughput-style metrics emitted by b.SetBytes (MB/s) and
// b.ReportMetric (txn/s, hit%) ride on the same result line.
var (
	mbLine  = regexp.MustCompile(`([\d.]+) MB/s`)
	txnLine = regexp.MustCompile(`([\d.]+) txn/s`)
	hitLine = regexp.MustCompile(`([\d.]+) hit%`)
)

func extra(line string, re *regexp.Regexp) float64 {
	if m := re.FindStringSubmatch(line); m != nil {
		v, _ := strconv.ParseFloat(m[1], 64)
		return v
	}
	return 0
}

func parse(path string) (map[string]*metrics, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]*metrics)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := m[1]
		ns, _ := strconv.ParseFloat(m[3], 64)
		var bytes, allocs float64
		if m[4] != "" {
			bytes, _ = strconv.ParseFloat(m[4], 64)
			allocs, _ = strconv.ParseFloat(m[5], 64)
		}
		e := out[name]
		if e == nil {
			e = &metrics{}
			out[name] = e
		}
		e.Runs++
		e.NsPerOp += ns
		e.BytesPerOp += bytes
		e.AllocsPerOp += allocs
		e.MBPerSec += extra(line, mbLine)
		e.TxnPerSec += extra(line, txnLine)
		e.HitPct += extra(line, hitLine)
	}
	for _, e := range out {
		n := float64(e.Runs)
		e.NsPerOp /= n
		e.BytesPerOp /= n
		e.AllocsPerOp /= n
		e.MBPerSec /= n
		e.TxnPerSec /= n
		e.HitPct /= n
	}
	return out, sc.Err()
}

func pct(old, new float64) *float64 {
	if old == 0 {
		return nil
	}
	v := math.Round((new-old)/old*1000) / 10 // one decimal, stable output
	return &v
}

func main() {
	oldPath := flag.String("old", "", "baseline `go test -bench` text output")
	newPath := flag.String("new", "", "current `go test -bench` text output")
	ceilPath := flag.String("ceiling", "", "unencumbered-run text output (e.g. storage off) for recovered_pct")
	note := flag.String("note", "", "free-form note recorded in the JSON")
	flag.Parse()
	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -new is required")
		os.Exit(2)
	}
	cur, err := parse(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	base := map[string]*metrics{}
	if *oldPath != "" {
		if base, err = parse(*oldPath); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
	ceil := map[string]*metrics{}
	if *ceilPath != "" {
		if ceil, err = parse(*ceilPath); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
	names := make(map[string]bool)
	for n := range cur {
		names[n] = true
	}
	for n := range base {
		names[n] = true
	}
	var order []string
	for n := range names {
		order = append(order, n)
	}
	sort.Strings(order)
	var rows []row
	for _, n := range order {
		r := row{Name: n, Old: base[n], New: cur[n], Ceiling: ceil[n]}
		if r.Old != nil && r.New != nil {
			r.DeltaNsPct = pct(r.Old.NsPerOp, r.New.NsPerOp)
			r.DeltaAllocsPct = pct(r.Old.AllocsPerOp, r.New.AllocsPerOp)
			r.DeltaMBPct = pct(r.Old.MBPerSec, r.New.MBPerSec)
			r.DeltaTxnPct = pct(r.Old.TxnPerSec, r.New.TxnPerSec)
			if r.Ceiling != nil && r.Old.TxnPerSec > 0 && r.New.TxnPerSec > 0 &&
				r.Ceiling.TxnPerSec > r.Old.TxnPerSec {
				v := math.Round((r.New.TxnPerSec-r.Old.TxnPerSec)/
					(r.Ceiling.TxnPerSec-r.Old.TxnPerSec)*1000) / 10
				r.RecoveredPct = &v
			}
		}
		rows = append(rows, r)
	}
	doc := struct {
		Note       string `json:"note,omitempty"`
		Units      string `json:"units"`
		Benchmarks []row  `json:"benchmarks"`
	}{
		Note:       strings.TrimSpace(*note),
		Units:      "ns_per_op averaged over runs; mb_per_sec/txn_per_sec from the bench line when present; delta_pct = (new-old)/old*100; recovered_pct = (new-old)/(ceiling-old)*100 on txn/s vs the -ceiling run",
		Benchmarks: rows,
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
